//! # `reclaim` — epoch-based memory reclamation (EBR)
//!
//! The paper's implementations "rely on garbage collectors that correctly
//! recycle memory once it becomes unreachable" (Section 7). Rust has no GC,
//! so this crate provides the substrate: a classic three-epoch EBR scheme
//! with per-process (padded) slots, per-process limbo bags and a global
//! epoch.
//!
//! * A thread **pins** ([`Collector::pin`]) before traversing a structure and
//!   holds the [`Guard`] for the duration of one operation attempt. Pins are
//!   re-entrant.
//! * Unreachable objects are **retired** ([`Guard::retire_box`] /
//!   [`Guard::retire_with`]); they are freed only after every thread pinned
//!   at retirement time has unpinned (two global epoch advances).
//! * A [`Collector`] can be created **disabled** ([`Collector::disabled`]):
//!   pins become no-ops and retired objects are kept until the collector is
//!   dropped. This is the defined behaviour of crash-simulation runs — a
//!   crash must not free anything, because recovery code may still inspect
//!   it (recoverable memory managers are future work in the paper, too).
//!
//! Each data structure owns its own `Collector`, so a stalled thread in one
//! structure never blocks reclamation in another.
//!
//! ## Recycling rules (object pools)
//!
//! [`Guard::retire_ctx`] defers an arbitrary *recycle* action instead of a
//! free: the `isb` object pools use it to route a retired descriptor/node
//! back into a per-thread free list (or, under the mapped backend, back to
//! the persistent arena). The contract is exactly that of a free — the
//! action runs only after two global epoch advances, so an address re-enters
//! circulation no earlier than deallocation would have allowed, and the
//! ABA argument for tagged info pointers carries over unchanged. Only
//! *enabled* collectors accept `retire_ctx`; disabled (crash-sim) collectors
//! park plain frees so [`Collector::take_parked`] can deduplicate them
//! against the post-crash reachable set.

#![warn(missing_docs)]

use nvm::pad::CachePadded;
use nvm::tid;
use nvm::MAX_PROCS;
use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Mutex;

/// A deferred deallocation handed back by [`Collector::take_parked`]: the
/// raw allocation plus the function that frees it (exactly once).
pub type DeferredFree = (*mut u8, unsafe fn(*mut u8));

/// A deferred reclamation action: either a plain deallocation or a
/// context-carrying recycle hook ([`Guard::retire_ctx`] — object pools route
/// retirement back into their free lists through this).
enum Garbage {
    Plain { ptr: *mut u8, drop_fn: unsafe fn(*mut u8) },
    Ctx { ptr: *mut u8, ctx: *mut u8, drop_fn: unsafe fn(*mut u8, *mut u8) },
}

unsafe impl Send for Garbage {}

impl Garbage {
    unsafe fn free(self) {
        match self {
            Garbage::Plain { ptr, drop_fn } => unsafe { drop_fn(ptr) },
            Garbage::Ctx { ptr, ctx, drop_fn } => unsafe { drop_fn(ptr, ctx) },
        }
    }
}

unsafe fn drop_box<T>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut T) });
}

const UNPINNED: u64 = 0;
const GENS: usize = 3;
/// How many pins between attempts to advance the global epoch.
const ADVANCE_PERIOD: u64 = 64;

/// Thread-private reclamation state (owned exclusively by the slot's thread).
struct Bags {
    depth: u32,
    pins: u64,
    bags: [Vec<Garbage>; GENS],
    bag_epochs: [u64; GENS],
}

impl Default for Bags {
    fn default() -> Self {
        Self { depth: 0, pins: 0, bags: Default::default(), bag_epochs: [u64::MAX; GENS] }
    }
}

#[derive(Default)]
struct Slot {
    /// `(epoch << 1) | 1` while pinned; [`UNPINNED`] otherwise.
    state: AtomicU64,
    bags: UnsafeCell<Bags>,
}

unsafe impl Sync for Slot {}

/// An epoch-based garbage collector (see crate docs).
pub struct Collector {
    global: CachePadded<AtomicU64>,
    slots: Vec<CachePadded<Slot>>,
    enabled: bool,
    /// Retired-but-never-freed garbage in disabled mode (freed on drop).
    parked: Mutex<Vec<Garbage>>,
}

unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector that actually reclaims memory.
    pub fn new() -> Self {
        Self::with_mode(true)
    }

    /// A collector whose `retire`s are parked until drop (crash-sim mode).
    pub fn disabled() -> Self {
        Self::with_mode(false)
    }

    fn with_mode(enabled: bool) -> Self {
        Self {
            global: CachePadded::new(AtomicU64::new(1)),
            slots: (0..MAX_PROCS).map(|_| CachePadded::new(Slot::default())).collect(),
            enabled,
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Whether this collector actually frees memory.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pins the calling thread; reclamation of anything retired afterwards
    /// is deferred until the returned guard (and any nested guards) drop.
    ///
    /// Nested pins take a fast path: a thread already pinned only bumps its
    /// re-entrancy depth — no epoch-table traffic. Data structures exploit
    /// this by holding **one** guard per operation and letting interior
    /// helpers (`op_recover`, recursive helping) re-pin for free.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        let pid = tid::tid();
        if !self.enabled {
            return Guard { c: self, pid, active: false };
        }
        let slot = &self.slots[pid];
        // SAFETY: `bags` is only touched by the thread owning slot `pid`.
        let bags = unsafe { &mut *slot.bags.get() };
        bags.depth += 1;
        if bags.depth == 1 {
            self.pin_outermost(slot, bags);
        }
        Guard { c: self, pid, active: true }
    }

    /// The outermost-pin slow path: announce an epoch, free ripe bags, and
    /// periodically try to advance the global epoch.
    fn pin_outermost(&self, slot: &Slot, bags: &mut Bags) {
        let mut epoch = self.global.load(SeqCst);
        loop {
            slot.state.store((epoch << 1) | 1, SeqCst);
            let now = self.global.load(SeqCst);
            if now == epoch {
                break;
            }
            epoch = now;
        }
        bags.pins += 1;
        self.collect(bags, epoch);
        if bags.pins.is_multiple_of(ADVANCE_PERIOD) {
            self.try_advance(epoch);
        }
    }

    /// Frees bags at least two epochs old.
    fn collect(&self, bags: &mut Bags, epoch: u64) {
        for i in 0..GENS {
            let e = bags.bag_epochs[i];
            if e != u64::MAX && epoch >= e + 2 && !bags.bags[i].is_empty() {
                for g in bags.bags[i].drain(..) {
                    // SAFETY: retired in epoch e, and every thread pinned at
                    // that time has since unpinned (global advanced by ≥2).
                    unsafe { g.free() };
                }
                bags.bag_epochs[i] = u64::MAX;
            }
        }
    }

    fn try_advance(&self, epoch: u64) {
        for slot in &self.slots {
            let s = slot.state.load(SeqCst);
            if s != UNPINNED && (s >> 1) != epoch {
                return;
            }
        }
        let _ = self.global.compare_exchange(epoch, epoch + 1, SeqCst, SeqCst);
    }

    fn unpin(&self, pid: usize) {
        let slot = &self.slots[pid];
        // SAFETY: slot owner.
        let bags = unsafe { &mut *slot.bags.get() };
        debug_assert!(bags.depth > 0);
        bags.depth -= 1;
        if bags.depth == 0 {
            slot.state.store(UNPINNED, SeqCst);
        }
    }

    fn retire_raw(&self, pid: usize, g: Garbage) {
        if !self.enabled {
            self.parked.lock().unwrap().push(g);
            return;
        }
        let slot = &self.slots[pid];
        // SAFETY: slot owner; retire is only legal while pinned.
        let bags = unsafe { &mut *slot.bags.get() };
        debug_assert!(bags.depth > 0, "retire outside of a pin");
        // Seal with the CURRENT global epoch, not the epoch this thread
        // pinned at. The global may have advanced one step during our pin
        // (advancement only waits for threads announcing OLDER epochs), so
        // a reader pinned at `pin_epoch + 1` may have obtained a reference
        // to this object before we unlinked it. Sealing with `pin_epoch`
        // would free at global `pin_epoch + 2` — an advancement that reader
        // does NOT block (it announces `pin_epoch + 1`) — a one-epoch-early
        // use-after-free. Sealing with the epoch loaded here (SeqCst,
        // strictly after the unlink) is airtight: in the SeqCst total order
        // every reader that obtained the pointer before the unlink pinned
        // no later than this load, so it announced at most `e` and blocks
        // advancement beyond `e + 1`, while the bag is freed only once the
        // global reaches `e + 2`.
        let e = self.global.load(SeqCst);
        let idx = (e % GENS as u64) as usize;
        if bags.bag_epochs[idx] != e {
            // The slot cycled to a new epoch: its old content is ≥3 epochs old.
            for old in bags.bags[idx].drain(..) {
                unsafe { old.free() };
            }
            bags.bag_epochs[idx] = e;
        }
        bags.bags[idx].push(g);
    }

    /// Takes ownership of all *parked* garbage (disabled mode). Used by
    /// structure teardown after a simulated crash: the crash image may have
    /// rolled pointers back, resurrecting reachability to retired objects,
    /// so the structure must free the union of {reachable} ∪ {parked}
    /// deduplicated by address rather than let both sides free separately.
    ///
    /// Returns `(address, drop_fn)` pairs; the caller becomes responsible
    /// for freeing each address exactly once.
    pub fn take_parked(&mut self) -> Vec<DeferredFree> {
        self.parked
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .map(|g| match g {
                Garbage::Plain { ptr, drop_fn } => (ptr, drop_fn),
                // retire_ctx asserts the collector is enabled, so parked
                // garbage is always plain.
                Garbage::Ctx { .. } => unreachable!("ctx retire parked on a disabled collector"),
            })
            .collect()
    }

    /// Number of objects currently awaiting reclamation (diagnostics only;
    /// racy when other threads are active).
    pub fn pending(&self) -> usize {
        let parked = self.parked.lock().unwrap().len();
        let mut n = parked;
        for slot in &self.slots {
            let bags = unsafe { &*slot.bags.get() };
            n += bags.bags.iter().map(Vec::len).sum::<usize>();
        }
        n
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        for slot in &self.slots {
            let bags = unsafe { &mut *slot.bags.get() };
            for bag in &mut bags.bags {
                for g in bag.drain(..) {
                    unsafe { g.free() };
                }
            }
        }
        for g in self.parked.get_mut().unwrap().drain(..) {
            unsafe { g.free() };
        }
    }
}

/// RAII pin token; see [`Collector::pin`].
pub struct Guard<'c> {
    c: &'c Collector,
    pid: usize,
    active: bool,
}

impl Guard<'_> {
    /// Defers deallocation of `ptr` (a `Box::into_raw` allocation) until no
    /// pinned thread can still hold a reference.
    ///
    /// # Safety
    /// `ptr` must be a valid `Box<T>` allocation, unreachable to any thread
    /// that pins after this call, and retired exactly once.
    pub unsafe fn retire_box<T>(&self, ptr: *mut T) {
        self.c.retire_raw(self.pid, Garbage::Plain { ptr: ptr as *mut u8, drop_fn: drop_box::<T> });
    }

    /// Defers an arbitrary reclamation action (same contract as
    /// [`Guard::retire_box`]; `drop_fn` runs on the retiring thread later).
    ///
    /// # Safety
    /// See [`Guard::retire_box`]; additionally `drop_fn(ptr)` must be safe to
    /// call once `ptr` is unreachable.
    pub unsafe fn retire_with(&self, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        self.c.retire_raw(self.pid, Garbage::Plain { ptr, drop_fn });
    }

    /// Defers a reclamation action that carries a context pointer —
    /// `drop_fn(ptr, ctx)` runs once no pinned thread can still reference
    /// `ptr` (two global epoch advances, like [`Guard::retire_box`]). Object
    /// pools use this to route retirement back into a free list instead of
    /// the allocator: the epoch delay is exactly what makes address reuse
    /// safe under the same argument as deallocation.
    ///
    /// Only legal on an enabled collector: parked (crash-sim) garbage must
    /// stay expressible as plain frees for [`Collector::take_parked`].
    ///
    /// # Safety
    /// See [`Guard::retire_box`]; additionally `ctx` must stay valid until
    /// the collector is dropped, and `drop_fn(ptr, ctx)` must be safe to
    /// call once `ptr` is unreachable.
    pub unsafe fn retire_ctx(
        &self,
        ptr: *mut u8,
        ctx: *mut u8,
        drop_fn: unsafe fn(*mut u8, *mut u8),
    ) {
        assert!(self.c.enabled, "retire_ctx on a disabled collector");
        self.c.retire_raw(self.pid, Garbage::Ctx { ptr, ctx, drop_fn });
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.c.unpin(self.pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
    use std::sync::Arc;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Relaxed);
        }
    }

    fn churn(c: &Collector, rounds: usize, drops: &Arc<AtomicUsize>) {
        for _ in 0..rounds {
            let g = c.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(drops))));
            unsafe { g.retire_box(p) };
        }
    }

    #[test]
    fn retired_objects_eventually_free() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        churn(&c, 1000, &drops);
        drop(c);
        assert_eq!(drops.load(Relaxed), 1000);
    }

    #[test]
    fn progress_frees_before_drop() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        churn(&c, 10_000, &drops);
        // Single thread, epoch advances every ADVANCE_PERIOD pins: almost
        // everything must already be free before collector drop.
        assert!(drops.load(Relaxed) > 9_000, "only {} freed", drops.load(Relaxed));
        drop(c);
        assert_eq!(drops.load(Relaxed), 10_000);
    }

    #[test]
    fn disabled_collector_parks_until_drop() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::disabled();
        churn(&c, 100, &drops);
        assert_eq!(drops.load(Relaxed), 0);
        assert_eq!(c.pending(), 100);
        drop(c);
        assert_eq!(drops.load(Relaxed), 100);
    }

    #[test]
    fn nested_pins_are_reentrant() {
        tid::set_tid(0);
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let g1 = c.pin();
        let g2 = c.pin();
        let p = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
        unsafe { g2.retire_box(p) };
        drop(g2);
        drop(g1);
        churn(&c, 500, &drops); // force epochs forward; must not double-free
        drop(c);
        assert_eq!(drops.load(Relaxed), 501);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let freed = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());

        struct Flag(Arc<AtomicUsize>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Relaxed);
            }
        }

        // Reader thread: pins and holds.
        let c2 = Arc::clone(&c);
        let hold = Arc::new(AtomicUsize::new(0));
        let hold2 = Arc::clone(&hold);
        let reader = std::thread::spawn(move || {
            tid::set_tid(1);
            let g = c2.pin();
            hold2.store(1, Relaxed);
            while hold2.load(Relaxed) != 2 {
                std::hint::spin_loop();
            }
            drop(g);
        });
        while hold.load(Relaxed) != 1 {
            std::hint::spin_loop();
        }

        // Writer: retire an object *after* the reader pinned, then churn.
        let c3 = Arc::clone(&c);
        let freed2 = Arc::clone(&freed);
        let writer = std::thread::spawn(move || {
            tid::set_tid(2);
            {
                let g = c3.pin();
                let p = Box::into_raw(Box::new(Flag(freed2)));
                unsafe { g.retire_box(p) };
            }
            for _ in 0..1000 {
                drop(c3.pin());
            }
        });
        writer.join().unwrap();
        assert_eq!(freed.load(Relaxed), 0, "freed while a pre-retirement reader is pinned");

        hold.store(2, Relaxed);
        reader.join().unwrap();
        // Churn on the retiring slot until the flag is freed.
        for _ in 0..10 {
            std::thread::spawn({
                let c = Arc::clone(&c);
                move || {
                    tid::set_tid(2);
                    for _ in 0..1000 {
                        drop(c.pin());
                    }
                }
            })
            .join()
            .unwrap();
            if freed.load(Relaxed) == 1 {
                break;
            }
        }
        assert_eq!(freed.load(Relaxed), 1, "object never freed after reader unpinned");
    }

    #[test]
    fn retire_ctx_runs_with_context_after_epochs() {
        tid::set_tid(0);
        let c = Collector::new();
        let sink: Box<Mutex<Vec<usize>>> = Box::new(Mutex::new(Vec::new()));
        unsafe fn collect_into(p: *mut u8, ctx: *mut u8) {
            let sink = unsafe { &*(ctx as *const Mutex<Vec<usize>>) };
            sink.lock().unwrap().push(p as usize);
            drop(unsafe { Box::from_raw(p as *mut u64) });
        }
        let p = Box::into_raw(Box::new(7u64));
        {
            let g = c.pin();
            unsafe { g.retire_ctx(p as *mut u8, &*sink as *const _ as *mut u8, collect_into) };
        }
        // Not freed while the current epoch set could still reference it.
        assert_eq!(c.pending(), 1);
        for _ in 0..500 {
            drop(c.pin());
        }
        drop(c);
        assert_eq!(sink.lock().unwrap().as_slice(), &[p as usize]);
    }

    #[test]
    #[should_panic(expected = "retire_ctx on a disabled collector")]
    fn retire_ctx_rejects_disabled_collectors() {
        unsafe fn nop(_p: *mut u8, _ctx: *mut u8) {}
        tid::set_tid(0);
        let c = Collector::disabled();
        let g = c.pin();
        let p = Box::into_raw(Box::new(1u64));
        unsafe { g.retire_ctx(p as *mut u8, std::ptr::null_mut(), nop) };
        drop(unsafe { Box::from_raw(p) }); // unreachable; keeps miri-style hygiene
    }

    #[test]
    fn concurrent_churn_is_sound() {
        let c = Arc::new(Collector::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let total: usize = 4 * 2000;
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    tid::set_tid(10 + i);
                    churn(&c, 2000, &drops);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        drop(c);
        assert_eq!(drops.load(Relaxed), total);
    }
}
