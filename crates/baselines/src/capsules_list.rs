//! `Capsules` / `Capsules-Opt`: the normalized capsules transformation \[3\]
//! applied to the Harris list.
//!
//! The operation is partitioned into **two capsules** (the normalized-form
//! optimisation): a *generator* capsule (the search, producing the CAS to
//! perform) and an *executor* capsule (the recoverable CAS + wrap-up). At
//! each capsule boundary the continuation state (phase, pred, curr, node,
//! seq) is persisted into a per-process capsule area, and every CAS is a
//! recoverable CAS ([`crate::rcas`]) so that after a crash the process can
//! re-enter its capsule and detect whether its CAS took effect.
//!
//! * `OPT = false` (**`Capsules`** in the figures) additionally applies the
//!   general durability transform of Izraelevitz et al. \[27\]: a `pwb` +
//!   `pfence` after **every** shared-memory access — including every read of
//!   the search loop. This is what makes its throughput collapse.
//! * `OPT = true` (**`Capsules-Opt`**) is the hand-tuned variant: flushes
//!   only at capsule boundaries, around the recoverable CAS, and — like
//!   `DT-Opt` — a pbarrier for every *marked* node traversed (the dependent-
//!   deletion rule), which is why its barrier count grows with contention.

use crate::rcas::{pack, val_part, RCasCtx};
use crate::util::{is_marked, ptr_of, PerProc};
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel keys.
pub const KEY_MIN: u64 = 0;
/// Tail sentinel key.
pub const KEY_MAX: u64 = u64::MAX;

/// A node; `next` is a recoverable-CAS word (stamped, marked).
#[repr(C)]
pub struct Node<M: Persist> {
    key: PWord<M>,
    next: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.key);
        f(&self.next);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(key: u64, next: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node { key: PWord::new(key), next: PWord::new(next) }))
    }
}

/// Per-process capsule continuation state (one cache line).
struct CapState<M: Persist> {
    phase: PWord<M>,
    pred: PWord<M>,
    curr: PWord<M>,
    node: PWord<M>,
    seq: PWord<M>,
    result: PWord<M>,
}

impl<M: Persist> Default for CapState<M> {
    fn default() -> Self {
        Self {
            phase: PWord::new(0),
            pred: PWord::new(0),
            curr: PWord::new(0),
            node: PWord::new(0),
            seq: PWord::new(0),
            result: PWord::new(0),
        }
    }
}

unsafe impl<M: Persist> PersistWords<M> for CapState<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.phase);
        f(&self.pred);
        f(&self.curr);
        f(&self.node);
        f(&self.seq);
        f(&self.result);
    }
}

/// Capsules-transformed Harris list (see module docs).
pub struct CapsulesList<M: Persist, const OPT: bool> {
    head: *mut Node<M>,
    ctx: RCasCtx<M>,
    caps: PerProc<CapState<M>>,
    seqs: PerProc<AtomicU64>,
    collector: Collector,
}

unsafe impl<M: Persist, const OPT: bool> Send for CapsulesList<M, OPT> {}
unsafe impl<M: Persist, const OPT: bool> Sync for CapsulesList<M, OPT> {}

impl<M: Persist, const OPT: bool> Default for CapsulesList<M, OPT> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const OPT: bool> CapsulesList<M, OPT> {
    /// New empty list.
    pub fn new() -> Self {
        let tail: *mut Node<M> = Node::alloc(KEY_MAX, 0);
        let head = Node::alloc(KEY_MIN, pack(tail as u64, 0, 0));
        Self {
            head,
            ctx: RCasCtx::new(),
            caps: PerProc::new(),
            seqs: PerProc::new(),
            collector: Collector::new(),
        }
    }

    /// Shared read under the durability transform: `pwb; pfence` after every
    /// access in the non-optimised variant.
    #[inline]
    fn rd(&self, w: &PWord<M>) -> u64 {
        let v = w.load();
        if !OPT {
            M::pwb(w);
            M::pfence();
        }
        v
    }

    fn bump_seq(&self, pid: usize) -> u64 {
        self.seqs.get(pid).fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Persist the capsule boundary: continuation state, then fence.
    fn capsule_boundary(&self, pid: usize, phase: u64, pred: u64, curr: u64, node: u64, seq: u64) {
        let c = self.caps.get(pid);
        c.phase.store(phase);
        c.pred.store(pred);
        c.curr.store(curr);
        c.node.store(node);
        c.seq.store(seq);
        M::pwb_obj(c);
        M::psync();
    }

    fn persist_result(&self, pid: usize, r: bool) {
        let c = self.caps.get(pid);
        c.result.store(r as u64);
        M::pwb(&c.result);
        M::psync();
    }

    /// Generator capsule: Harris search. Returns `(pred, curr, pred_next_w)`
    /// where `pred_next_w` is the exact stamped word read from `pred.next`.
    unsafe fn search(
        &self,
        pid: usize,
        key: u64,
        g: &Guard<'_>,
    ) -> (*mut Node<M>, *mut Node<M>, u64) {
        unsafe {
            'retry: loop {
                let mut pred = self.head;
                let mut pred_w = self.rd(&(*pred).next);
                let mut curr = ptr_of(pred_w) as *mut Node<M>;
                loop {
                    let succ_w = self.rd(&(*curr).next);
                    if is_marked(succ_w) {
                        if OPT {
                            // Dependent deletion must be durable first.
                            M::pbarrier(&(*curr).next);
                        }
                        let seq = self.bump_seq(pid);
                        let res = self.ctx.rcas(&(*pred).next, pred_w, ptr_of(succ_w), pid, seq);
                        if res != pred_w {
                            continue 'retry;
                        }
                        g.retire_box(curr);
                        pred_w = self.rd(&(*pred).next);
                        curr = ptr_of(pred_w) as *mut Node<M>;
                        continue;
                    }
                    if self.rd(&(*curr).key) >= key {
                        return (pred, curr, pred_w);
                    }
                    pred = curr;
                    pred_w = succ_w;
                    curr = ptr_of(succ_w) as *mut Node<M>;
                }
            }
        }
    }

    /// Inserts `key`; `false` if present.
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let node = Node::<M>::alloc(key, 0);
        loop {
            let g = self.collector.pin();
            // Capsule 1: generator.
            let (pred, curr, pred_w) = unsafe { self.search(pid, key, &g) };
            unsafe {
                if self.rd(&(*curr).key) == key {
                    drop(Box::from_raw(node));
                    self.persist_result(pid, false);
                    return false;
                }
                let seq = self.bump_seq(pid);
                (*node).next.store(pack(curr as u64, pid, seq));
                M::pwb_obj(&*node);
                M::pfence();
                // Capsule boundary: continuation persisted before the CAS.
                self.capsule_boundary(pid, 2, pred as u64, curr as u64, node as u64, seq);
                // Capsule 2: executor (recoverable CAS) + wrap-up.
                let res = self.ctx.rcas(&(*pred).next, pred_w, node as u64, pid, seq);
                if res == pred_w {
                    if OPT {
                        M::psync();
                    }
                    self.persist_result(pid, true);
                    return true;
                }
            }
        }
    }

    /// Deletes `key`; `false` if absent.
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        loop {
            let g = self.collector.pin();
            let (pred, curr, pred_w) = unsafe { self.search(pid, key, &g) };
            unsafe {
                if self.rd(&(*curr).key) != key {
                    self.persist_result(pid, false);
                    return false;
                }
                let succ_w = self.rd(&(*curr).next);
                if is_marked(succ_w) {
                    continue;
                }
                let seq = self.bump_seq(pid);
                self.capsule_boundary(pid, 2, pred as u64, curr as u64, 0, seq);
                // Decisive recoverable CAS: the mark.
                let res = self.ctx.rcas(
                    &(*curr).next,
                    succ_w,
                    val_part(succ_w) | crate::util::MARK,
                    pid,
                    seq,
                );
                if res != succ_w {
                    continue;
                }
                if OPT {
                    M::psync(); // the mark is the linearized effect
                }
                // Cleanup CAS (idempotent unlink), also recoverable.
                let seq2 = self.bump_seq(pid);
                let r2 = self.ctx.rcas(&(*pred).next, pred_w, ptr_of(succ_w), pid, seq2);
                if r2 == pred_w {
                    g.retire_box(curr);
                }
                self.persist_result(pid, true);
                return true;
            }
        }
    }

    /// Membership test.
    pub fn find(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let g = self.collector.pin();
        let (_, curr, _) = unsafe { self.search(pid, key, &g) };
        let r = unsafe { self.rd(&(*curr).key) == key };
        self.persist_result(pid, r);
        r
    }

    /// Post-crash detection of the executor capsule's CAS.
    pub fn detect_executor(&self, pid: usize) -> Option<bool> {
        let c = self.caps.get(pid);
        if c.phase.load() != 2 {
            return None;
        }
        let pred = c.pred.load() as *const Node<M>;
        let seq = c.seq.load();
        if pred.is_null() {
            return None;
        }
        unsafe { Some(self.ctx.detect(&(*pred).next, pid, seq)) }
    }

    /// Quiescent snapshot of user keys.
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = ptr_of((*self.head).next.load()) as *mut Node<M>;
            while (*n).key.load() != KEY_MAX {
                if !is_marked((*n).next.load()) {
                    out.push((*n).key.load());
                }
                n = ptr_of((*n).next.load()) as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist, const OPT: bool> Drop for CapsulesList<M, OPT> {
    fn drop(&mut self) {
        unsafe {
            let mut n = self.head;
            loop {
                let next = ptr_of((*n).next.load()) as *mut Node<M>;
                let last = (*n).key.load() == KEY_MAX;
                drop(Box::from_raw(n));
                if last {
                    break;
                }
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type Gen = CapsulesList<CountingNvm, false>;
    type Opt = CapsulesList<CountingNvm, true>;

    #[test]
    fn sequential_semantics_both_variants() {
        nvm::tid::set_tid(0);
        let g = Gen::new();
        let o = Opt::new();
        for which in 0..2 {
            let (i1, i2, f1, d1, d2, f2) = if which == 0 {
                (
                    g.insert(0, 5),
                    g.insert(0, 5),
                    g.find(0, 5),
                    g.delete(0, 5),
                    g.delete(0, 5),
                    g.find(0, 5),
                )
            } else {
                (
                    o.insert(0, 5),
                    o.insert(0, 5),
                    o.find(0, 5),
                    o.delete(0, 5),
                    o.delete(0, 5),
                    o.find(0, 5),
                )
            };
            assert!(i1);
            assert!(!i2, "duplicate insert");
            assert!(f1);
            assert!(d1);
            assert!(!d2, "double delete");
            assert!(!f2);
        }
    }

    #[test]
    fn matches_btreeset_randomly() {
        use rand::{Rng, SeedableRng};
        nvm::tid::set_tid(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut l = Opt::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            let k = rng.gen_range(1..40u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(l.insert(0, k), model.insert(k)),
                1 => assert_eq!(l.delete(0, k), model.remove(&k)),
                _ => assert_eq!(l.find(0, k), model.contains(&k)),
            }
        }
        assert_eq!(l.snapshot_keys(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn general_transform_flushes_on_reads() {
        nvm::tid::set_tid(0);
        let g = Gen::new();
        for k in 1..=20u64 {
            g.insert(0, k);
        }
        let before = nvm::stats::snapshot();
        g.find(0, 20);
        let d = nvm::stats::snapshot().since(&before);
        assert!(d.pwb > 20, "durability transform must flush every read, got {}", d.pwb);
        assert!(d.pfence > 20);
    }

    #[test]
    fn opt_variant_flushes_far_less() {
        nvm::tid::set_tid(0);
        let o = Opt::new();
        for k in 1..=20u64 {
            o.insert(0, k);
        }
        let before = nvm::stats::snapshot();
        o.find(0, 20);
        let d = nvm::stats::snapshot().since(&before);
        assert!(d.pwb <= 4, "hand-tuned find should flush O(1) words, got {}", d.pwb);
    }

    #[test]
    fn executor_detection_after_completed_insert() {
        nvm::tid::set_tid(0);
        let o = Opt::new();
        assert!(o.insert(0, 9));
        assert_eq!(o.detect_executor(0), Some(true));
    }

    #[test]
    fn concurrent_churn_stays_sorted() {
        let l = Arc::new(Opt::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    use rand::{Rng, SeedableRng};
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t as u64);
                    for _ in 0..1500 {
                        let k = rng.gen_range(1..24u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                l.insert(t, k);
                            }
                            1 => {
                                l.delete(t, k);
                            }
                            _ => {
                                l.find(t, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut l = Arc::into_inner(l).unwrap();
        let snap = l.snapshot_keys();
        for w in snap.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
