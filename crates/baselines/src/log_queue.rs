//! `Log-Queue`: faithful-shape reimplementation of the detectable log queue
//! of Friedman, Herlihy, Marathe, Petrank \[20\].
//!
//! Per-process persistent **log entries** announce each operation before it
//! executes; queue nodes carry the enqueuer's stamp and a `deq_tid` word
//! that dequeuers claim with a CAS — the arbitration deciding, across a
//! crash, which dequeuer owns the removal. Persistency placement follows
//! the paper: the node is flushed before linking, the link before the tail
//! swing, the `deq_tid` claim before the head swing, and log entries around
//! both.

use crate::util::PerProc;
use nvm::{PWord, Persist, PersistWords};
use reclaim::Collector;

/// A queue node: value, link, enqueuer stamp, dequeuer claim.
#[repr(C)]
pub struct Node<M: Persist> {
    val: PWord<M>,
    next: PWord<M>,
    enq: PWord<M>,
    deq_tid: PWord<M>, // 0 = unclaimed; pid+1 = claimed
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.val);
        f(&self.next);
        f(&self.enq);
        f(&self.deq_tid);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64, enq: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node {
            val: PWord::new(val),
            next: PWord::new(0),
            enq: PWord::new(enq),
            deq_tid: PWord::new(0),
        }))
    }
}

/// One process's log: operation counter, announced op, result.
struct Log<M: Persist> {
    seq: PWord<M>,
    announced: PWord<M>, // node ptr (enq) or op code (deq)
    result: PWord<M>,
}

impl<M: Persist> Default for Log<M> {
    fn default() -> Self {
        Self { seq: PWord::new(0), announced: PWord::new(0), result: PWord::new(u64::MAX) }
    }
}

/// The detectable log queue (see module docs).
pub struct LogQueue<M: Persist> {
    head: PWord<M>,
    tail: PWord<M>,
    logs: PerProc<Log<M>>,
    collector: Collector,
}

unsafe impl<M: Persist> Send for LogQueue<M> {}
unsafe impl<M: Persist> Sync for LogQueue<M> {}

impl<M: Persist> Default for LogQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> LogQueue<M> {
    /// New empty queue.
    pub fn new() -> Self {
        let s: *mut Node<M> = Node::alloc(0, 0);
        Self {
            head: PWord::new(s as u64),
            tail: PWord::new(s as u64),
            logs: PerProc::new(),
            collector: Collector::new(),
        }
    }

    fn announce(&self, pid: usize, what: u64) -> u64 {
        let l = self.logs.get(pid);
        let seq = l.seq.load() + 1;
        l.seq.store(seq);
        l.announced.store(what);
        l.result.store(u64::MAX);
        M::pwb(&l.seq);
        M::pwb(&l.announced);
        M::psync();
        seq
    }

    fn log_result(&self, pid: usize, r: u64) {
        let l = self.logs.get(pid);
        l.result.store(r);
        M::pwb(&l.result);
        M::psync();
    }

    /// Enqueue `v`.
    pub fn enqueue(&self, pid: usize, v: u64) {
        let node = Node::<M>::alloc(v, ((pid as u64) << 48) | 1);
        self.announce(pid, node as u64);
        unsafe {
            M::pwb_obj(&*node); // node durable before it becomes reachable
            M::pfence();
        }
        let _g = self.collector.pin();
        loop {
            let t = self.tail.load();
            let tn = unsafe { (*(t as *mut Node<M>)).next.load() };
            if tn != 0 {
                // Help: persist the link before advancing the tail past it.
                unsafe { M::pwb(&(*(t as *mut Node<M>)).next) };
                let _ = self.tail.cas(t, tn);
                continue;
            }
            if unsafe { (*(t as *mut Node<M>)).next.cas(0, node as u64) } == 0 {
                unsafe { M::pwb(&(*(t as *mut Node<M>)).next) };
                M::psync();
                let _ = self.tail.cas(t, node as u64);
                self.log_result(pid, 1);
                return;
            }
        }
    }

    /// Dequeue; `None` when empty.
    pub fn dequeue(&self, pid: usize) -> Option<u64> {
        self.announce(pid, u64::MAX - 1);
        let g = self.collector.pin();
        loop {
            let h = self.head.load();
            let t = self.tail.load();
            let next = unsafe { (*(h as *mut Node<M>)).next.load() };
            if h == t {
                if next == 0 {
                    self.log_result(pid, u64::MAX - 2); // empty
                    return None;
                }
                unsafe { M::pwb(&(*(h as *mut Node<M>)).next) };
                let _ = self.tail.cas(t, next);
                continue;
            }
            let nref = unsafe { &*(next as *mut Node<M>) };
            let v = nref.val.load();
            // Arbitration: claim the node before removing it.
            if nref.deq_tid.cas(0, pid as u64 + 1) == 0 {
                // The claim decides the winner across a crash.
                M::pwb(&nref.deq_tid);
                M::psync();
                if self.head.cas(h, next) == h {
                    M::pwb(&self.head);
                    unsafe { g.retire_box(h as *mut Node<M>) };
                }
                self.log_result(pid, v);
                return Some(v);
            } else {
                // Someone claimed it: help move the head past it.
                M::pwb(&nref.deq_tid);
                let _ = self.head.cas(h, next);
            }
        }
    }

    /// Quiescent snapshot.
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let s = self.head.load() as *mut Node<M>;
            let mut n = (*s).next.load() as *mut Node<M>;
            while !n.is_null() {
                if (*n).deq_tid.load() == 0 {
                    out.push((*n).val.load());
                }
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist> Drop for LogQueue<M> {
    fn drop(&mut self) {
        unsafe {
            let mut n = self.head.load() as *mut Node<M>;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                drop(Box::from_raw(n));
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type Q = LogQueue<CountingNvm>;

    #[test]
    fn fifo() {
        nvm::tid::set_tid(0);
        let q = Q::new();
        assert_eq!(q.dequeue(0), None);
        q.enqueue(0, 1);
        q.enqueue(0, 2);
        assert_eq!(q.dequeue(0), Some(1));
        assert_eq!(q.dequeue(0), Some(2));
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn per_op_persistency_cost_is_constant() {
        nvm::tid::set_tid(0);
        let q = Q::new();
        q.enqueue(0, 1);
        let before = nvm::stats::snapshot();
        q.enqueue(0, 2);
        let d = nvm::stats::snapshot().since(&before);
        assert!(d.pwb <= 8, "enqueue flushes O(1) words, got {}", d.pwb);
        assert!(d.psync <= 4);
    }

    #[test]
    fn concurrent_conservation() {
        let q = Arc::new(Q::new());
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = Arc::new(AtomicU64::new(0));
        let per = 1000u64;
        let mut hs = Vec::new();
        for p in 0..2u64 {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    q.enqueue(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..2usize {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(10 + c);
                let mut got = 0;
                let mut s = 0u64;
                while got < per {
                    if let Some(v) = q.dequeue(10 + c) {
                        got += 1;
                        s += v;
                    }
                }
                sum.fetch_add(s, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (1..=2 * per).sum::<u64>());
    }
}
