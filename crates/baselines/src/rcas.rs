//! Recoverable CAS (Attiya, Ben-Baruch, Hendler \[1\]) — the substrate of
//! the capsules transformation.
//!
//! Every value stored into a recoverable-CAS word is stamped with its
//! writer: `[seq:10][pid:6][ptr/mark:48]`. Before a process `q` overwrites a
//! value owned by `(p, s)`, it first records that value in the evidence
//! matrix `R[p][q]` (persistently, ordered before the CAS), so that `p` can
//! detect after a crash that its CAS took effect even though its value has
//! since been overwritten: either the word still carries `(p, s)`, or some
//! `R[p][q]` does.
//!
//! The 10-bit sequence number wraps; the original construction uses
//! unbounded sequence numbers. With ≤1024 in-flight detections per process
//! the window is collision-free, which holds for capsule-per-operation use.

use crate::util::cell_addr;
use nvm::pad::CachePadded;
use nvm::{PWord, Persist, MAX_PROCS};

/// Bits available for the value part (pointer | mark).
pub const VAL_BITS: u64 = 48;
const VAL_MASK: u64 = (1 << VAL_BITS) - 1;

/// Pack a 48-bit value part with its writer stamp.
#[inline]
pub fn pack(val: u64, pid: usize, seq: u64) -> u64 {
    debug_assert!(val <= VAL_MASK);
    debug_assert!(pid < MAX_PROCS);
    val | (pid as u64) << 48 | (seq & 0x3ff) << 54
}

/// The unstamped value part.
#[inline]
pub fn val_part(w: u64) -> u64 {
    w & VAL_MASK
}

/// The writer stamp `(pid, seq)`.
#[inline]
pub fn owner(w: u64) -> (usize, u64) {
    (((w >> 48) & 0x3f) as usize, (w >> 54) & 0x3ff)
}

/// The evidence matrix `R[p][q]` plus the recoverable-CAS operations.
pub struct RCasCtx<M: Persist> {
    r: Vec<CachePadded<Vec<PWord<M>>>>,
}

impl<M: Persist> Default for RCasCtx<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> RCasCtx<M> {
    /// Fresh evidence matrix.
    pub fn new() -> Self {
        Self {
            r: (0..MAX_PROCS)
                .map(|_| CachePadded::new((0..MAX_PROCS).map(|_| PWord::new(0)).collect()))
                .collect(),
        }
    }

    /// Recoverable CAS: `q = pid` tries to change `cell` from the exact
    /// stamped word `old` to `pack(new_val, pid, seq)`. Returns the word
    /// read (equal to `old` iff the swap happened).
    ///
    /// `flush_evidence` controls the hand-tuned (`true`) persistency of the
    /// evidence write; the general durability transform flushes every access
    /// anyway, so it passes `true` too — the flag exists so private-cache
    /// runs can skip the counter.
    pub fn rcas(&self, cell: &PWord<M>, old: u64, new_val: u64, pid: usize, seq: u64) -> u64 {
        let (op, _) = owner(old);
        // Evidence for the previous owner, durable before the overwrite.
        let ev = &self.r[op][pid];
        ev.store(old);
        M::pwb(ev);
        M::pfence();
        let res = cell.cas(old, pack(new_val, pid, seq));
        M::pwb(cell);
        res
    }

    /// Post-crash detection: did `(pid, seq)`'s CAS on `cell` take effect?
    pub fn detect(&self, cell: &PWord<M>, pid: usize, seq: u64) -> bool {
        let w = cell.load();
        if owner(w) == (pid, seq & 0x3ff) {
            return true;
        }
        self.r[pid].iter().any(|e| owner(e.load()) == (pid, seq & 0x3ff))
    }

    /// Address helper (for diagnostics).
    pub fn evidence_addr(&self, p: usize, q: usize) -> u64 {
        cell_addr(&self.r[p][q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;

    type Ctx = RCasCtx<CountingNvm>;

    #[test]
    fn pack_roundtrip() {
        let w = pack(0x7fff_dead_bee8, 13, 700);
        assert_eq!(val_part(w), 0x7fff_dead_bee8);
        assert_eq!(owner(w), (13, 700));
    }

    #[test]
    fn successful_rcas_is_detectable_in_place() {
        nvm::tid::set_tid(0);
        let ctx = Ctx::new();
        let cell: PWord<CountingNvm> = PWord::new(pack(0x100, 1, 1));
        let old = cell.load();
        let res = ctx.rcas(&cell, old, 0x200, 2, 5);
        assert_eq!(res, old);
        assert!(ctx.detect(&cell, 2, 5), "value still in place");
        assert!(!ctx.detect(&cell, 1, 1) || owner(cell.load()) != (1, 1));
    }

    #[test]
    fn overwritten_rcas_detected_through_evidence() {
        nvm::tid::set_tid(0);
        let ctx = Ctx::new();
        let cell: PWord<CountingNvm> = PWord::new(pack(0x100, 1, 1));
        // p=2 installs (2,5).
        let w0 = cell.load();
        ctx.rcas(&cell, w0, 0x200, 2, 5);
        // p=3 overwrites (2,5) with (3,9): must leave evidence for p=2.
        let w1 = cell.load();
        ctx.rcas(&cell, w1, 0x300, 3, 9);
        assert_eq!(owner(cell.load()), (3, 9));
        assert!(ctx.detect(&cell, 2, 5), "evidence row must prove p2's success");
    }

    #[test]
    fn failed_rcas_is_not_detected() {
        nvm::tid::set_tid(0);
        let ctx = Ctx::new();
        let cell: PWord<CountingNvm> = PWord::new(pack(0x100, 1, 1));
        // p=2 tries with a stale expected value: fails.
        let stale = pack(0x999, 7, 7);
        let res = ctx.rcas(&cell, stale, 0x200, 2, 6);
        assert_ne!(res, stale);
        assert!(!ctx.detect(&cell, 2, 6));
    }
}
