//! # `baselines` — comparators for the ISB-tracking evaluation
//!
//! Every implementation the paper's Section 5 measures against:
//!
//! | name (paper) | module | recoverable? | notes |
//! |---|---|---|---|
//! | `Harris-LL` | [`harris`] | no | Harris's lock-free list \[23\], Figure 4 |
//! | `DT-Opt` | [`dt_list`] | detectable | direct tracking per \[20\]'s guidelines, hand-tuned flushes |
//! | — | [`rcas`] | — | recoverable CAS \[1\], substrate for capsules |
//! | `Capsules` / `Capsules-Opt` | [`capsules_list`] | detectable | normalized 2-capsule transformation \[3\]; `Capsules` adds the full durability transform \[27\] (pwb+pfence per shared access) |
//! | `MS-Queue` | [`ms_queue`] | no | Michael–Scott queue \[30\], Figure 7 |
//! | `Log-Queue` | [`log_queue`] | detectable | Friedman et al. \[20\], faithful-shape |
//! | `Capsules-General` / `Capsules-Normal` | [`capsules_queue`] | detectable | capsule-per-CAS vs normalized 2-capsule MS-queue |
//!
//! All are generic over [`nvm::Persist`] so they run under real flushes,
//! counting mode, or the private-cache model — the placement (and therefore
//! count) of persistency instructions follows the cited papers, which is
//! what drives the figures' shapes (e.g., the barrier-per-traversed-marked-
//! node behaviour of `DT-Opt`/`Capsules-Opt` versus the constant barrier
//! count of ISB).

#![warn(missing_docs)]

pub mod capsules_list;
pub mod capsules_queue;
pub mod dt_list;
pub mod harris;
pub mod log_queue;
pub mod ms_queue;
pub mod rcas;
pub mod util;
