//! `Capsules-General` / `Capsules-Normal`: the capsules transformation \[3\]
//! applied to the MS-queue (Figure 7 comparators).
//!
//! * `NORMALIZED = false` (**Capsules-General**): one capsule per CAS, and
//!   the general durability transform \[27\] — `pwb; pfence` after every
//!   shared access.
//! * `NORMALIZED = true` (**Capsules-Normal**): the normalized two-capsule
//!   variant with hand-tuned persistency (capsule boundaries + recoverable-
//!   CAS evidence only).

use crate::rcas::{pack, RCasCtx};
use crate::util::{ptr_of, PerProc};
use nvm::{PWord, Persist, PersistWords};
use reclaim::Collector;
use std::sync::atomic::{AtomicU64, Ordering};

/// A queue node with a stamped (recoverable-CAS) next word.
#[repr(C)]
pub struct Node<M: Persist> {
    val: PWord<M>,
    next: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.val);
        f(&self.next);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node { val: PWord::new(val), next: PWord::new(0) }))
    }
}

/// Per-process capsule continuation.
struct CapState<M: Persist> {
    phase: PWord<M>,
    a: PWord<M>,
    b: PWord<M>,
    seq: PWord<M>,
    result: PWord<M>,
}

impl<M: Persist> Default for CapState<M> {
    fn default() -> Self {
        Self {
            phase: PWord::new(0),
            a: PWord::new(0),
            b: PWord::new(0),
            seq: PWord::new(0),
            result: PWord::new(0),
        }
    }
}

unsafe impl<M: Persist> PersistWords<M> for CapState<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.phase);
        f(&self.a);
        f(&self.b);
        f(&self.seq);
        f(&self.result);
    }
}

/// Capsules-transformed MS-queue.
pub struct CapsulesQueue<M: Persist, const NORMALIZED: bool> {
    head: PWord<M>,
    tail: PWord<M>,
    ctx: RCasCtx<M>,
    caps: PerProc<CapState<M>>,
    seqs: PerProc<AtomicU64>,
    collector: Collector,
}

unsafe impl<M: Persist, const N: bool> Send for CapsulesQueue<M, N> {}
unsafe impl<M: Persist, const N: bool> Sync for CapsulesQueue<M, N> {}

impl<M: Persist, const N: bool> Default for CapsulesQueue<M, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist, const NORMALIZED: bool> CapsulesQueue<M, NORMALIZED> {
    /// New empty queue.
    pub fn new() -> Self {
        let s: *mut Node<M> = Node::alloc(0);
        Self {
            head: PWord::new(pack(s as u64, 0, 0)),
            tail: PWord::new(pack(s as u64, 0, 0)),
            ctx: RCasCtx::new(),
            caps: PerProc::new(),
            seqs: PerProc::new(),
            collector: Collector::new(),
        }
    }

    #[inline]
    fn rd(&self, w: &PWord<M>) -> u64 {
        let v = w.load();
        if !NORMALIZED {
            M::pwb(w);
            M::pfence();
        }
        v
    }

    fn bump_seq(&self, pid: usize) -> u64 {
        self.seqs.get(pid).fetch_add(1, Ordering::Relaxed) + 1
    }

    fn boundary(&self, pid: usize, phase: u64, a: u64, b: u64, seq: u64) {
        let c = self.caps.get(pid);
        c.phase.store(phase);
        c.a.store(a);
        c.b.store(b);
        c.seq.store(seq);
        M::pwb_obj(c);
        M::psync();
    }

    fn result(&self, pid: usize, r: u64) {
        let c = self.caps.get(pid);
        c.result.store(r);
        M::pwb(&c.result);
        M::psync();
    }

    /// Enqueue `v`.
    pub fn enqueue(&self, pid: usize, v: u64) {
        let node = Node::<M>::alloc(v);
        unsafe {
            M::pwb_obj(&*node);
            M::pfence();
        }
        let _g = self.collector.pin();
        loop {
            let t_w = self.rd(&self.tail);
            let t = ptr_of(t_w) as *mut Node<M>;
            let tn_w = self.rd(unsafe { &(*t).next });
            if ptr_of(tn_w) != 0 {
                let seq = self.bump_seq(pid);
                let _ = self.ctx.rcas(&self.tail, t_w, ptr_of(tn_w), pid, seq);
                continue;
            }
            let seq = self.bump_seq(pid);
            // Capsule boundary before the decisive CAS (general: one capsule
            // per CAS; normalized: this is the executor capsule).
            self.boundary(pid, 2, t as u64, node as u64, seq);
            if self.ctx.rcas(unsafe { &(*t).next }, tn_w, node as u64, pid, seq) == tn_w {
                if NORMALIZED {
                    M::psync();
                }
                let seq2 = self.bump_seq(pid);
                if !NORMALIZED {
                    self.boundary(pid, 3, t as u64, node as u64, seq2);
                }
                let _ = self.ctx.rcas(&self.tail, t_w, node as u64, pid, seq2);
                self.result(pid, 1);
                return;
            }
        }
    }

    /// Dequeue; `None` when empty.
    pub fn dequeue(&self, pid: usize) -> Option<u64> {
        let g = self.collector.pin();
        loop {
            let h_w = self.rd(&self.head);
            let t_w = self.rd(&self.tail);
            let h = ptr_of(h_w) as *mut Node<M>;
            let next_w = self.rd(unsafe { &(*h).next });
            let next = ptr_of(next_w);
            if ptr_of(h_w) == ptr_of(t_w) {
                if next == 0 {
                    self.result(pid, u64::MAX - 2);
                    return None;
                }
                let seq = self.bump_seq(pid);
                let _ = self.ctx.rcas(&self.tail, t_w, next, pid, seq);
                continue;
            }
            let v = self.rd(unsafe { &(*(next as *mut Node<M>)).val });
            let seq = self.bump_seq(pid);
            self.boundary(pid, 2, h as u64, next, seq);
            if self.ctx.rcas(&self.head, h_w, next, pid, seq) == h_w {
                if NORMALIZED {
                    M::psync();
                }
                unsafe { g.retire_box(h) };
                self.result(pid, v);
                return Some(v);
            }
        }
    }

    /// Post-crash detection of the last decisive CAS.
    pub fn detect(&self, pid: usize) -> Option<bool> {
        let c = self.caps.get(pid);
        if c.phase.load() < 2 {
            return None;
        }
        let seq = c.seq.load();
        Some(
            self.ctx.detect(&self.head, pid, seq) || {
                let a = c.a.load() as *const Node<M>;
                !a.is_null() && unsafe { self.ctx.detect(&(*a).next, pid, seq) }
            },
        )
    }

    /// Quiescent snapshot.
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let s = ptr_of(self.head.load()) as *mut Node<M>;
            let mut n = ptr_of((*s).next.load()) as *mut Node<M>;
            while !n.is_null() {
                out.push((*n).val.load());
                n = ptr_of((*n).next.load()) as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist, const N: bool> Drop for CapsulesQueue<M, N> {
    fn drop(&mut self) {
        unsafe {
            let mut n = ptr_of(self.head.load()) as *mut Node<M>;
            while !n.is_null() {
                let next = ptr_of((*n).next.load()) as *mut Node<M>;
                drop(Box::from_raw(n));
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type Gen = CapsulesQueue<CountingNvm, false>;
    type Norm = CapsulesQueue<CountingNvm, true>;

    #[test]
    fn fifo_both_variants() {
        nvm::tid::set_tid(0);
        let g = Gen::new();
        g.enqueue(0, 1);
        g.enqueue(0, 2);
        assert_eq!(g.dequeue(0), Some(1));
        assert_eq!(g.dequeue(0), Some(2));
        assert_eq!(g.dequeue(0), None);
        let n = Norm::new();
        n.enqueue(0, 1);
        n.enqueue(0, 2);
        assert_eq!(n.dequeue(0), Some(1));
        assert_eq!(n.dequeue(0), Some(2));
        assert_eq!(n.dequeue(0), None);
    }

    #[test]
    fn general_variant_flushes_more() {
        nvm::tid::set_tid(0);
        let g = Gen::new();
        let n = Norm::new();
        g.enqueue(0, 1);
        n.enqueue(0, 1);
        let b = nvm::stats::snapshot();
        g.enqueue(0, 2);
        let mid = nvm::stats::snapshot();
        n.enqueue(0, 2);
        let e = nvm::stats::snapshot();
        let dg = mid.since(&b);
        let dn = e.since(&mid);
        assert!(
            dg.pwb + dg.pfence > dn.pwb + dn.pfence,
            "general {dg:?} must out-flush normalized {dn:?}"
        );
    }

    #[test]
    fn concurrent_conservation_normalized() {
        let q = Arc::new(Norm::new());
        use std::sync::atomic::AtomicU64;
        let sum = Arc::new(AtomicU64::new(0));
        let per = 800u64;
        let mut hs = Vec::new();
        for p in 0..2u64 {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    q.enqueue(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..2usize {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(10 + c);
                let mut got = 0;
                let mut s = 0u64;
                while got < per {
                    if let Some(v) = q.dequeue(10 + c) {
                        got += 1;
                        s += v;
                    }
                }
                sum.fetch_add(s, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (1..=2 * per).sum::<u64>());
    }
}
