//! `MS-Queue`: the Michael–Scott lock-free queue \[30\] — non-recoverable
//! baseline of Figure 7 (right).

use nvm::{PWord, Persist};
use reclaim::Collector;

/// A queue node.
#[repr(C)]
pub struct Node<M: Persist> {
    val: u64,
    next: PWord<M>,
}

impl<M: Persist> Node<M> {
    fn alloc(val: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node { val, next: PWord::new(0) }))
    }
}

/// Michael–Scott queue.
pub struct MsQueue<M: Persist> {
    head: PWord<M>,
    tail: PWord<M>,
    collector: Collector,
}

unsafe impl<M: Persist> Send for MsQueue<M> {}
unsafe impl<M: Persist> Sync for MsQueue<M> {}

impl<M: Persist> Default for MsQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> MsQueue<M> {
    /// New empty queue.
    pub fn new() -> Self {
        let s: *mut Node<M> = Node::alloc(0);
        Self { head: PWord::new(s as u64), tail: PWord::new(s as u64), collector: Collector::new() }
    }

    /// Enqueue `v`.
    pub fn enqueue(&self, _pid: usize, v: u64) {
        let node = Node::<M>::alloc(v);
        let _g = self.collector.pin();
        loop {
            let t = self.tail.load();
            let tn = unsafe { (*(t as *mut Node<M>)).next.load() };
            if tn != 0 {
                // Tail lagging: help advance it.
                let _ = self.tail.cas(t, tn);
                continue;
            }
            if unsafe { (*(t as *mut Node<M>)).next.cas(0, node as u64) } == 0 {
                let _ = self.tail.cas(t, node as u64);
                return;
            }
        }
    }

    /// Dequeue; `None` when empty.
    pub fn dequeue(&self, _pid: usize) -> Option<u64> {
        let g = self.collector.pin();
        loop {
            let h = self.head.load();
            let t = self.tail.load();
            let next = unsafe { (*(h as *mut Node<M>)).next.load() };
            if h == t {
                if next == 0 {
                    return None;
                }
                let _ = self.tail.cas(t, next);
                continue;
            }
            let v = unsafe { (*(next as *mut Node<M>)).val };
            if self.head.cas(h, next) == h {
                unsafe { g.retire_box(h as *mut Node<M>) };
                return Some(v);
            }
        }
    }

    /// Quiescent snapshot.
    pub fn snapshot_vals(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let s = self.head.load() as *mut Node<M>;
            let mut n = (*s).next.load() as *mut Node<M>;
            while !n.is_null() {
                out.push((*n).val);
                n = (*n).next.load() as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist> Drop for MsQueue<M> {
    fn drop(&mut self) {
        unsafe {
            let mut n = self.head.load() as *mut Node<M>;
            while !n.is_null() {
                let next = (*n).next.load() as *mut Node<M>;
                drop(Box::from_raw(n));
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::NoPersist;
    use std::sync::Arc;

    type Q = MsQueue<NoPersist>;

    #[test]
    fn fifo() {
        nvm::tid::set_tid(0);
        let q = Q::new();
        assert_eq!(q.dequeue(0), None);
        q.enqueue(0, 1);
        q.enqueue(0, 2);
        assert_eq!(q.dequeue(0), Some(1));
        assert_eq!(q.dequeue(0), Some(2));
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn concurrent_conservation() {
        let q = Arc::new(Q::new());
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = Arc::new(AtomicU64::new(0));
        let per = 2000u64;
        let mut hs = Vec::new();
        for p in 0..2u64 {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..per {
                    q.enqueue(p as usize, 1 + p * per + i);
                }
            }));
        }
        for c in 0..2usize {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            hs.push(std::thread::spawn(move || {
                nvm::tid::set_tid(10 + c);
                let mut got = 0;
                let mut s = 0u64;
                while got < per {
                    if let Some(v) = q.dequeue(10 + c) {
                        got += 1;
                        s += v;
                    }
                }
                sum.fetch_add(s, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), (1..=2 * per).sum::<u64>());
    }
}
