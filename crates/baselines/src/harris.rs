//! `Harris-LL`: Timothy Harris's lock-free linked list \[23\] — the
//! non-recoverable baseline of Figure 4 and the substrate that both the
//! direct-tracking and capsules lists transform.
//!
//! Logical deletion sets a mark bit in the victim's `next` word; traversals
//! physically unlink marked nodes they encounter. Memory is reclaimed
//! through EBR; the unlink winner retires the node.

use crate::util::{is_marked, ptr_of};
use nvm::{PWord, Persist};
use reclaim::{Collector, Guard};

/// Sentinel keys.
pub const KEY_MIN: u64 = 0;
/// Tail sentinel key.
pub const KEY_MAX: u64 = u64::MAX;

/// A list node; `next` packs the mark bit.
#[repr(C)]
pub struct Node<M: Persist> {
    pub(crate) key: u64,
    pub(crate) next: PWord<M>,
}

impl<M: Persist> Node<M> {
    pub(crate) fn alloc(key: u64, next: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node { key, next: PWord::new(next) }))
    }
}

/// Harris's lock-free sorted linked list.
pub struct HarrisList<M: Persist> {
    head: *mut Node<M>,
    collector: Collector,
}

unsafe impl<M: Persist> Send for HarrisList<M> {}
unsafe impl<M: Persist> Sync for HarrisList<M> {}

impl<M: Persist> Default for HarrisList<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> HarrisList<M> {
    /// New empty list.
    pub fn new() -> Self {
        let tail: *mut Node<M> = Node::alloc(KEY_MAX, 0);
        let head = Node::alloc(KEY_MIN, tail as u64);
        Self { head, collector: Collector::new() }
    }

    /// Search: returns `(pred, curr)` with `curr` the first unmarked node
    /// with `curr.key >= key`, unlinking marked chains on the way.
    pub(crate) unsafe fn search(&self, key: u64, g: &Guard<'_>) -> (*mut Node<M>, *mut Node<M>) {
        unsafe {
            'retry: loop {
                let mut pred = self.head;
                let mut curr = ptr_of((*pred).next.load()) as *mut Node<M>;
                loop {
                    let succ_w = (*curr).next.load();
                    if is_marked(succ_w) {
                        // curr is logically deleted: unlink it.
                        let succ = ptr_of(succ_w);
                        if (*pred).next.cas(curr as u64, succ) != curr as u64 {
                            continue 'retry;
                        }
                        g.retire_box(curr);
                        curr = succ as *mut Node<M>;
                        continue;
                    }
                    if (*curr).key >= key {
                        return (pred, curr);
                    }
                    pred = curr;
                    curr = ptr_of(succ_w) as *mut Node<M>;
                }
            }
        }
    }

    /// Inserts `key`; `false` if present.
    pub fn insert(&self, _pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let node = Node::<M>::alloc(key, 0);
        loop {
            let g = self.collector.pin();
            let (pred, curr) = unsafe { self.search(key, &g) };
            unsafe {
                if (*curr).key == key {
                    drop(Box::from_raw(node));
                    return false;
                }
                (*node).next.store(curr as u64);
                if (*pred).next.cas(curr as u64, node as u64) == curr as u64 {
                    return true;
                }
            }
        }
    }

    /// Deletes `key`; `false` if absent.
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        loop {
            let g = self.collector.pin();
            let (pred, curr) = unsafe { self.search(key, &g) };
            unsafe {
                if (*curr).key != key {
                    return false;
                }
                let succ_w = (*curr).next.load();
                if is_marked(succ_w) {
                    continue;
                }
                // Logical delete: set the mark (stamped for DT reuse).
                if (*curr).next.cas(succ_w, crate::util::marked(succ_w, pid)) != succ_w {
                    continue;
                }
                // Physical delete (best effort; searches clean up otherwise).
                if (*pred).next.cas(curr as u64, ptr_of(succ_w)) == curr as u64 {
                    g.retire_box(curr);
                }
                return true;
            }
        }
    }

    /// Membership test.
    pub fn find(&self, _pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let g = self.collector.pin();
        let (_, curr) = unsafe { self.search(key, &g) };
        unsafe { (*curr).key == key }
    }

    /// Quiescent snapshot of user keys.
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = ptr_of((*self.head).next.load()) as *mut Node<M>;
            while (*n).key != KEY_MAX {
                if !is_marked((*n).next.load()) {
                    out.push((*n).key);
                }
                n = ptr_of((*n).next.load()) as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist> Drop for HarrisList<M> {
    fn drop(&mut self) {
        unsafe {
            let mut n = self.head;
            loop {
                let next = ptr_of((*n).next.load()) as *mut Node<M>;
                let last = (*n).key == KEY_MAX;
                drop(Box::from_raw(n));
                if last {
                    break;
                }
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::NoPersist;
    use std::sync::Arc;

    type L = HarrisList<NoPersist>;

    #[test]
    fn sequential_semantics() {
        nvm::tid::set_tid(0);
        let l = L::new();
        assert!(l.insert(0, 5));
        assert!(!l.insert(0, 5));
        assert!(l.find(0, 5));
        assert!(l.delete(0, 5));
        assert!(!l.delete(0, 5));
        assert!(!l.find(0, 5));
    }

    #[test]
    fn sorted_snapshot() {
        nvm::tid::set_tid(0);
        let mut l = L::new();
        for k in [9u64, 2, 7, 4] {
            l.insert(0, k);
        }
        l.delete(0, 7);
        assert_eq!(l.snapshot_keys(), vec![2, 4, 9]);
    }

    #[test]
    fn matches_btreeset_randomly() {
        use rand::{Rng, SeedableRng};
        nvm::tid::set_tid(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut l = L::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..4000 {
            let k = rng.gen_range(1..48u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(l.insert(0, k), model.insert(k)),
                1 => assert_eq!(l.delete(0, k), model.remove(&k)),
                _ => assert_eq!(l.find(0, k), model.contains(&k)),
            }
        }
        assert_eq!(l.snapshot_keys(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_churn() {
        let l = Arc::new(L::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    use rand::{Rng, SeedableRng};
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t as u64);
                    for _ in 0..3000 {
                        let k = rng.gen_range(1..32u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                l.insert(t, k);
                            }
                            1 => {
                                l.delete(t, k);
                            }
                            _ => {
                                l.find(t, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut l = Arc::into_inner(l).unwrap();
        let snap = l.snapshot_keys();
        for w in snap.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn disjoint_concurrent_inserts() {
        let l = Arc::new(L::new());
        let hs: Vec<_> = (0..4u64)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t as usize);
                    for i in 0..250u64 {
                        assert!(l.insert(t as usize, 1 + t + i * 4));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut l = Arc::into_inner(l).unwrap();
        assert_eq!(l.snapshot_keys().len(), 1000);
    }
}
