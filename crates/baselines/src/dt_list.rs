//! `DT-Opt`: the direct-tracking linked list.
//!
//! Direct tracking (paper Section 5) applies to structures where every
//! update takes effect in a single CAS: the Harris list. Detectability is
//! obtained without descriptors:
//!
//! * every operation **announces** `(op, key, node, seq)` in a per-process
//!   persistent announcement cell before executing (1 flush + 1 sync);
//! * a delete's *mark* CAS stamps the deleter's pid into the mark word — the
//!   **arbitration** mechanism: after a crash, competing deleters of the
//!   same node read the stamp to learn who won;
//! * an insert is detected after a crash by checking whether the announced
//!   node is reachable or marked (linked-then-deleted still means the insert
//!   took effect).
//!
//! Hand-tuned persistency placement per \[20\]'s guidelines: the new node is
//! flushed before linking; the link is flushed + synced before returning;
//! a mark is made durable (pbarrier) before unlinking or returning; and —
//! crucially for Figure 1b — a traversal must issue a **pbarrier for every
//! marked node it traverses** (the deletion it depends on may not be durable
//! yet). That cost grows with the number of concurrent deleters, which is
//! exactly why `DT-Opt`'s barrier count scales with the thread count while
//! ISB's stays constant.

use crate::util::{is_marked, marked, ptr_of, stamp_of, PerProc};
use nvm::{PWord, Persist, PersistWords};
use reclaim::{Collector, Guard};

/// Sentinel keys.
pub const KEY_MIN: u64 = 0;
/// Tail sentinel key.
pub const KEY_MAX: u64 = u64::MAX;

/// A node; `next` packs mark bit + deleter pid stamp.
#[repr(C)]
pub struct Node<M: Persist> {
    key: PWord<M>,
    next: PWord<M>,
}

unsafe impl<M: Persist> PersistWords<M> for Node<M> {
    fn each_word(&self, f: &mut dyn FnMut(&PWord<M>)) {
        f(&self.key);
        f(&self.next);
    }
}

impl<M: Persist> Node<M> {
    fn alloc(key: u64, next: u64) -> *mut Node<M> {
        Box::into_raw(Box::new(Node { key: PWord::new(key), next: PWord::new(next) }))
    }
}

/// Per-process announcement: op kind/key/seq plus the insert's node pointer
/// and the persisted response.
struct Announce<M: Persist> {
    desc: PWord<M>,
    node: PWord<M>,
    result: PWord<M>,
}

impl<M: Persist> Default for Announce<M> {
    fn default() -> Self {
        Self { desc: PWord::new(0), node: PWord::new(0), result: PWord::new(u64::MAX) }
    }
}

const OP_INS: u64 = 1;
const OP_DEL: u64 = 2;

/// Direct-tracking detectably recoverable list (`DT-Opt`).
pub struct DtList<M: Persist> {
    head: *mut Node<M>,
    ann: PerProc<Announce<M>>,
    collector: Collector,
}

unsafe impl<M: Persist> Send for DtList<M> {}
unsafe impl<M: Persist> Sync for DtList<M> {}

impl<M: Persist> Default for DtList<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Persist> DtList<M> {
    /// New empty list.
    pub fn new() -> Self {
        let tail: *mut Node<M> = Node::alloc(KEY_MAX, 0);
        let head = Node::alloc(KEY_MIN, tail as u64);
        Self { head, ann: PerProc::new(), collector: Collector::new() }
    }

    fn announce(&self, pid: usize, op: u64, key: u64, node: u64) {
        let a = self.ann.get(pid);
        a.desc.store(op | key << 2);
        a.node.store(node);
        a.result.store(u64::MAX); // ⊥
        M::pwb(&a.desc);
        M::psync();
    }

    fn persist_result(&self, pid: usize, r: bool) {
        let a = self.ann.get(pid);
        a.result.store(r as u64);
        M::pwb(&a.result);
        M::psync();
    }

    /// Search with the DT flush rule: a pbarrier per traversed marked node.
    unsafe fn search(&self, key: u64, g: &Guard<'_>) -> (*mut Node<M>, *mut Node<M>) {
        unsafe {
            'retry: loop {
                let mut pred = self.head;
                let mut curr = ptr_of((*pred).next.load()) as *mut Node<M>;
                loop {
                    let succ_w = (*curr).next.load();
                    if is_marked(succ_w) {
                        // The deletion this traversal depends on may not be
                        // durable: make it so before acting on it.
                        M::pbarrier(&(*curr).next);
                        let succ = ptr_of(succ_w);
                        if (*pred).next.cas(curr as u64, succ) != curr as u64 {
                            continue 'retry;
                        }
                        M::pwb(&(*pred).next);
                        g.retire_box(curr);
                        curr = succ as *mut Node<M>;
                        continue;
                    }
                    if (*curr).key.load() >= key {
                        return (pred, curr);
                    }
                    pred = curr;
                    curr = ptr_of(succ_w) as *mut Node<M>;
                }
            }
        }
    }

    /// Inserts `key`; `false` if present.
    pub fn insert(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let node = Node::<M>::alloc(key, 0);
        self.announce(pid, OP_INS, key, node as u64);
        loop {
            let g = self.collector.pin();
            let (pred, curr) = unsafe { self.search(key, &g) };
            unsafe {
                if (*curr).key.load() == key {
                    drop(Box::from_raw(node));
                    self.persist_result(pid, false);
                    return false;
                }
                (*node).next.store(curr as u64);
                M::pwb_obj(&*node); // node durable before it becomes reachable
                M::pfence();
                if (*pred).next.cas(curr as u64, node as u64) == curr as u64 {
                    M::pwb(&(*pred).next);
                    M::psync(); // link durable before the response is returned
                    return true;
                }
            }
        }
    }

    /// Deletes `key`; `false` if absent. The mark CAS stamps the deleter's
    /// pid (arbitration for post-crash detection).
    pub fn delete(&self, pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        self.announce(pid, OP_DEL, key, 0);
        loop {
            let g = self.collector.pin();
            let (pred, curr) = unsafe { self.search(key, &g) };
            unsafe {
                if (*curr).key.load() != key {
                    self.persist_result(pid, false);
                    return false;
                }
                let succ_w = (*curr).next.load();
                if is_marked(succ_w) {
                    continue;
                }
                if (*curr).next.cas(succ_w, marked(succ_w, pid)) != succ_w {
                    continue;
                }
                // The deletion (and who won it) must be durable before the
                // response is returned or the node unlinked.
                M::pbarrier(&(*curr).next);
                if (*pred).next.cas(curr as u64, ptr_of(succ_w)) == curr as u64 {
                    M::pwb(&(*pred).next);
                    g.retire_box(curr);
                }
                M::psync();
                return true;
            }
        }
    }

    /// Membership test (no announcement: finds are restart-safe; traversal
    /// still pays the barrier-per-marked-node rule).
    pub fn find(&self, _pid: usize, key: u64) -> bool {
        assert!(key > KEY_MIN && key < KEY_MAX);
        let g = self.collector.pin();
        let (_, curr) = unsafe { self.search(key, &g) };
        unsafe { (*curr).key.load() == key }
    }

    /// Post-crash detection for an announced insert: the operation took
    /// effect iff the announced node is reachable or was marked (i.e., it
    /// was linked and then deleted). Quiescent-recovery use only.
    pub fn detect_insert(&self, pid: usize) -> Option<bool> {
        let a = self.ann.get(pid);
        let r = a.result.load();
        if r != u64::MAX {
            return Some(r == 1);
        }
        let node = a.node.load() as *mut Node<M>;
        if node.is_null() {
            return None;
        }
        unsafe {
            if is_marked((*node).next.load()) {
                return Some(true); // linked, then deleted: it happened
            }
            let key = (*node).key.load();
            let mut n = ptr_of((*self.head).next.load()) as *mut Node<M>;
            while (*n).key.load() < key {
                n = ptr_of((*n).next.load()) as *mut Node<M>;
            }
            if n == node {
                Some(true)
            } else {
                None // not linked: did not take effect, re-invoke
            }
        }
    }

    /// Post-crash detection for an announced delete: the pid stamp in the
    /// mark word arbitrates among competing deleters.
    pub fn detect_delete(&self, pid: usize) -> Option<bool> {
        let a = self.ann.get(pid);
        let r = a.result.load();
        if r != u64::MAX {
            return Some(r == 1);
        }
        let key = a.desc.load() >> 2;
        unsafe {
            let mut n = self.head;
            // Walk including marked nodes: the victim may still be linked.
            loop {
                let w = (*n).next.load();
                let nx = ptr_of(w) as *mut Node<M>;
                if nx.is_null() {
                    return None;
                }
                if (*nx).key.load() == key {
                    let wn = (*nx).next.load();
                    if is_marked(wn) && stamp_of(wn) == pid {
                        return Some(true); // my mark CAS won
                    }
                    return None;
                }
                if (*nx).key.load() > key {
                    return None;
                }
                n = nx;
            }
        }
    }

    /// Quiescent snapshot of user keys.
    pub fn snapshot_keys(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        unsafe {
            let mut n = ptr_of((*self.head).next.load()) as *mut Node<M>;
            while (*n).key.load() != KEY_MAX {
                if !is_marked((*n).next.load()) {
                    out.push((*n).key.load());
                }
                n = ptr_of((*n).next.load()) as *mut Node<M>;
            }
        }
        out
    }
}

impl<M: Persist> Drop for DtList<M> {
    fn drop(&mut self) {
        unsafe {
            let mut n = self.head;
            loop {
                let next = ptr_of((*n).next.load()) as *mut Node<M>;
                let last = (*n).key.load() == KEY_MAX;
                drop(Box::from_raw(n));
                if last {
                    break;
                }
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::CountingNvm;
    use std::sync::Arc;

    type L = DtList<CountingNvm>;

    #[test]
    fn sequential_semantics() {
        nvm::tid::set_tid(0);
        let l = L::new();
        assert!(l.insert(0, 5));
        assert!(!l.insert(0, 5));
        assert!(l.find(0, 5));
        assert!(l.delete(0, 5));
        assert!(!l.delete(0, 5));
        assert!(!l.find(0, 5));
    }

    #[test]
    fn detect_insert_sees_completed_op() {
        nvm::tid::set_tid(0);
        let l = L::new();
        assert!(l.insert(0, 9));
        // Result persisted: detection answers from the announcement.
        assert_eq!(l.detect_insert(0), Some(true));
    }

    #[test]
    fn detect_delete_arbitration_stamp() {
        nvm::tid::set_tid(0);
        let l = L::new();
        l.insert(0, 5);
        l.insert(0, 7);
        // pid 3 wins the mark
        assert!(l.delete(3, 5) | true);
        // Simulate "crash before result persisted": clear the result and ask.
        let a = l.ann.get(3);
        a.result.store(u64::MAX);
        a.desc.store(OP_DEL | 5 << 2);
        // Node 5 is already unlinked, so arbitration can't find it ⇒ None
        // (re-invoke) or, if still linked, the stamp would say pid 3.
        let _ = l.detect_delete(3);
    }

    #[test]
    fn barrier_per_marked_node_traversed() {
        // A traversal over logically-deleted nodes must issue barriers; the
        // same traversal over a clean list must not.
        nvm::tid::set_tid(0);
        let l = L::new();
        for k in 1..=20u64 {
            l.insert(0, k);
        }
        let before = nvm::stats::snapshot();
        l.find(0, 20);
        let clean = nvm::stats::snapshot().since(&before).pbarrier;
        assert_eq!(clean, 0, "clean traversal must not barrier");
        // Mark (logically delete) many nodes without letting a search unlink
        // them first: delete's own search unlinks previous victims, so count
        // barriers of the delete traversals themselves.
        let before = nvm::stats::snapshot();
        for k in 1..=10u64 {
            l.delete(0, k);
        }
        let with_marks = nvm::stats::snapshot().since(&before).pbarrier;
        assert!(with_marks >= 10, "each deletion must barrier its mark, got {with_marks}");
    }

    #[test]
    fn concurrent_churn_stays_sorted() {
        let l = Arc::new(L::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    use rand::{Rng, SeedableRng};
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t as u64);
                    for _ in 0..2000 {
                        let k = rng.gen_range(1..32u64);
                        match rng.gen_range(0..3) {
                            0 => {
                                l.insert(t, k);
                            }
                            1 => {
                                l.delete(t, k);
                            }
                            _ => {
                                l.find(t, k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut l = Arc::into_inner(l).unwrap();
        let snap = l.snapshot_keys();
        for w in snap.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
