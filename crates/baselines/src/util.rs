//! Shared helpers for the baselines: marked-pointer packing and per-process
//! persistent areas.

use nvm::pad::CachePadded;
use nvm::{PWord, Persist, MAX_PROCS};

/// Mark bit (logical deletion, Harris style) in bit 0 of a `next` word.
pub const MARK: u64 = 1;

/// Pointer part of a (possibly marked, possibly pid-stamped) next word.
/// Bits 1..48 hold the pointer (x86-64 canonical user pointers), bit 0 the
/// mark, bits 48.. the stamp (deleter pid for direct tracking).
#[inline]
pub fn ptr_of(w: u64) -> u64 {
    w & 0x0000_FFFF_FFFF_FFFE
}

/// Whether the word carries the mark bit.
#[inline]
pub fn is_marked(w: u64) -> bool {
    w & MARK == MARK
}

/// Marked version of `w`, stamped with the deleter's pid.
#[inline]
pub fn marked(w: u64, pid: usize) -> u64 {
    debug_assert!(pid < MAX_PROCS);
    ptr_of(w) | MARK | ((pid as u64) << 48)
}

/// The pid stamped into a marked word.
#[inline]
pub fn stamp_of(w: u64) -> usize {
    ((w >> 48) & 0x3f) as usize
}

/// A padded per-process array of persistent state (announcement areas,
/// capsule state, logs).
pub struct PerProc<T> {
    slots: Vec<CachePadded<T>>,
}

impl<T: Default> Default for PerProc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> PerProc<T> {
    /// One padded `T` per possible process.
    pub fn new() -> Self {
        Self { slots: (0..MAX_PROCS).map(|_| CachePadded::new(T::default())).collect() }
    }
}

impl<T> PerProc<T> {
    /// Process `pid`'s slot.
    #[inline]
    pub fn get(&self, pid: usize) -> &T {
        &self.slots[pid]
    }

    /// Iterate all slots.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &**s)
    }
}

/// A single persistent word per process (announcement cells).
pub type PerProcWord<M> = PerProc<PWord<M>>;

/// Convenience: the address of a `PWord` as `u64`.
#[inline]
pub fn cell_addr<M: Persist>(w: &PWord<M>) -> u64 {
    w as *const PWord<M> as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_packing_roundtrip() {
        let p = 0x7f12_3456_7890u64 & !7;
        assert!(!is_marked(p));
        let m = marked(p, 13);
        assert!(is_marked(m));
        assert_eq!(ptr_of(m), p);
        assert_eq!(stamp_of(m), 13);
        // Marking twice with a different pid re-stamps.
        let m2 = marked(m, 7);
        assert_eq!(ptr_of(m2), p);
        assert_eq!(stamp_of(m2), 7);
    }

    #[test]
    fn per_proc_slots_are_independent() {
        let pp: PerProc<std::sync::atomic::AtomicU64> = PerProc::new();
        pp.get(0).store(1, std::sync::atomic::Ordering::Relaxed);
        pp.get(5).store(2, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(pp.get(0).load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(pp.get(5).load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(pp.get(1).load(std::sync::atomic::Ordering::Relaxed), 0);
    }
}
