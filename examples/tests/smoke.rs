//! Smoke tests: run every example binary to completion with a small
//! workload (`ISB_EXAMPLE_SCALE_DIV`), so the examples cannot silently rot.

use std::process::Command;

fn run_example(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env("ISB_EXAMPLE_SCALE_DIV", "50")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let out = run_example(env!("CARGO_BIN_EXE_quickstart"), &[]);
    assert!(out.contains("set holds"), "unexpected output:\n{out}");
}

#[test]
fn crash_recovery_runs() {
    // Fixed seed for reproducibility; the binary's own assertions validate
    // exactly-once recovery.
    let out = run_example(env!("CARGO_BIN_EXE_crash_recovery"), &["3"]);
    assert!(out.contains("replayed exactly-once"), "unexpected output:\n{out}");
    assert!(out.contains("no acknowledged value lost"), "unexpected output:\n{out}");
}

#[test]
fn kv_index_runs() {
    let out = run_example(env!("CARGO_BIN_EXE_kv_index"), &[]);
    assert!(out.contains("invariants OK"), "unexpected output:\n{out}");
}

#[test]
fn restart_kv_runs() {
    let out = run_example(env!("CARGO_BIN_EXE_restart_kv"), &[]);
    assert!(out.contains("2 cataloged structures"), "unexpected output:\n{out}");
    assert!(out.contains("no acked work lost"), "unexpected output:\n{out}");
    assert!(
        out.contains("cross-process multi-structure recovery complete"),
        "unexpected output:\n{out}"
    );
}

#[test]
fn kv_demo_runs() {
    let out = run_example(env!("CARGO_BIN_EXE_kv_demo"), &[]);
    assert!(out.contains("byte-identical"), "unexpected output:\n{out}");
    assert!(out.contains("kv service demo OK"), "unexpected output:\n{out}");
}

#[test]
fn pipeline_runs() {
    let out = run_example(env!("CARGO_BIN_EXE_pipeline"), &[]);
    assert!(out.contains("reconciled total"), "unexpected output:\n{out}");
}
