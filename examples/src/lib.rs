//! Shared helpers for the examples.

/// Workload size `n`, scaled down by the `ISB_EXAMPLE_SCALE_DIV` environment
/// variable when set (result is at least 1). The smoke tests in
/// `tests/smoke.rs` use this to run every example binary to completion with
/// a tiny workload; interactive runs are unaffected.
pub fn scaled(n: u64) -> u64 {
    let div = std::env::var("ISB_EXAMPLE_SCALE_DIV").ok().and_then(|s| s.parse::<u64>().ok());
    scaled_by(n, div)
}

fn scaled_by(n: u64, div: Option<u64>) -> u64 {
    (n / div.filter(|&d| d > 0).unwrap_or(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::scaled_by;

    #[test]
    fn scaling_rules() {
        assert_eq!(scaled_by(1000, None), 1000, "unscaled without a divisor");
        assert_eq!(scaled_by(1000, Some(50)), 20);
        assert_eq!(scaled_by(10, Some(50)), 1, "never scales to zero");
        assert_eq!(scaled_by(1000, Some(0)), 1000, "divisor 0 is ignored");
    }
}
