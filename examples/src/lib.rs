//! Shared helpers for the examples.
