//! `restart_kv` — true cross-process restart recovery on the mapped
//! backend, with a **two-structure store**: one heap file hosting a KV map
//! *and* a job queue.
//!
//! The binary re-executes itself as a **child process** that opens the
//! store, inserts keys into the `"kv"` map and enqueues job ids into the
//! `"jobs"` queue while journaling acks, and then dies abruptly
//! (`std::process::abort`, no destructors, no flushes) with one operation
//! deliberately left un-acked. The parent re-opens the same heap file
//! **from its own address space**: one `Store::open` replays recovery for
//! every structure in the catalog, the attach-time report resolves the
//! in-flight operation detectably, no acked work is lost, and the
//! recovered store keeps serving.
//!
//! ```text
//! cargo run --release -p isb-examples --bin restart_kv
//! ```

use isb::recovery::Recovered;
use isb::store::Store;
use std::path::{Path, PathBuf};

const SHARDS: usize = 16;
const HEAP_BYTES: usize = 32 * 1024 * 1024;

fn scale(n: u64) -> u64 {
    let div: u64 = std::env::var("ISB_EXAMPLE_SCALE_DIV")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    (n / div).max(8)
}

fn heap_path(dir: &Path) -> PathBuf {
    dir.join("kv.heap")
}

/// Child: insert keys 1..=crash_at (enqueuing a job per 10 keys), journal
/// each ack, then die mid-flight — key `crash_at + 1` is inserted but never
/// acked.
fn child(dir: &Path, total: u64) {
    nvm::tid::set_tid(0);
    let store = Store::open_sized(heap_path(dir), HEAP_BYTES).expect("child open");
    let map = store.hashmap::<0>("kv", SHARDS).expect("kv handle");
    let jobs = store.queue::<0>("jobs").expect("jobs handle");
    let crash_at = total / 2;
    let mut acked = Vec::new();
    for k in 1..=crash_at {
        map.note_invocation(0);
        assert!(map.insert(0, k));
        if k % 10 == 0 {
            jobs.note_invocation(0);
            jobs.enqueue(0, k);
        }
        acked.push(k.to_string());
    }
    std::fs::write(dir.join("acked"), acked.join("\n")).unwrap();
    // One more insert, never acked: the op the parent must resolve.
    map.note_invocation(0);
    assert!(map.insert(0, crash_at + 1));
    // Crash: no Drop runs, no flush happens, the process just dies.
    std::process::abort();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("child") {
        child(Path::new(&args[2]), args[3].parse().unwrap());
        return;
    }

    let total = scale(2000);
    let crash_at = total / 2;
    let dir = std::env::temp_dir().join(format!("isb_restart_kv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!("phase 1: child process fills the two-structure store, then crashes hard");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["child", dir.to_str().unwrap(), &total.to_string()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn child");
    assert!(!status.success(), "the child is supposed to die abruptly");
    println!("  child died (status: {status}) with one operation in flight");

    println!("phase 2: parent re-opens {} and recovers ALL structures", heap_path(&dir).display());
    nvm::tid::set_tid(0);
    let store = Store::open_sized(heap_path(&dir), HEAP_BYTES).expect("parent open");
    let summary = store.summary();
    println!(
        "  attach epoch {}, {} cataloged structures, relocated: {}, torn blocks poisoned: {}, \
         leaked blocks swept: {}",
        summary.heap.attach_epoch,
        store.entries().len(),
        summary.heap.relocated,
        summary.heap.poisoned,
        summary.swept
    );
    let map = store.hashmap::<0>("kv", SHARDS).expect("kv handle");
    let jobs = store.queue::<0>("jobs").expect("jobs handle");

    // Every acked key must be present, and every acked job still queued.
    let acked: Vec<u64> = std::fs::read_to_string(dir.join("acked"))
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    for &k in &acked {
        assert!(map.find(0, k), "acked key {k} lost");
    }
    let mut jobs_seen = 0u64;
    for k in &acked {
        if k % 10 == 0 {
            assert_eq!(jobs.dequeue(0), Some(*k), "acked job {k} lost or out of order");
            jobs_seen += 1;
        }
    }
    assert_eq!(jobs.dequeue(0), None, "spurious extra job");
    println!(
        "  no acked work lost ({} acked inserts + {jobs_seen} queued jobs verified)",
        acked.len()
    );

    // The in-flight insert of `crash_at + 1` is detectably resolved by the
    // store-wide replay (one shared recovery area spans both structures).
    match summary.decision(0) {
        Recovered::Completed(res) => {
            println!(
                "  in-flight insert({}) recovered as Completed(res={res}): it took effect",
                crash_at + 1
            );
            assert!(map.find(0, crash_at + 1));
        }
        Recovered::Restart => {
            println!("  in-flight insert({}) recovered as Restart: re-invoking", crash_at + 1);
            assert!(map.insert(0, crash_at + 1));
        }
    }

    println!("phase 3: the recovered store keeps serving");
    for k in crash_at + 2..=total {
        assert!(map.insert(0, k));
        if k % 10 == 0 {
            jobs.enqueue(0, k);
        }
    }
    for k in 1..=total {
        assert!(map.find(0, k), "key {k} missing from the final store");
    }
    println!("  final store holds {total} keys plus the new job backlog");

    drop((map, jobs, store));
    let _ = std::fs::remove_dir_all(&dir);
    println!("restart_kv: cross-process multi-structure recovery complete");
}
