//! `restart_kv` — true cross-process restart recovery on the mapped backend.
//!
//! The binary re-executes itself as a **child process** that attaches a
//! file-backed `RHashMap` heap, inserts keys while journaling acks, and then
//! dies abruptly (`std::process::abort`, no destructors, no flushes) with
//! one operation deliberately left un-acked. The parent re-attaches the same
//! heap file **from its own address space**, reads the attach-time recovery
//! report, resolves the in-flight operation detectably, verifies no acked
//! key was lost, and keeps using the recovered map.
//!
//! ```text
//! cargo run --release -p isb-examples --bin restart_kv
//! ```

use isb::hashmap::RHashMap;
use isb::recovery::Recovered;
use nvm::MappedNvm;
use std::path::{Path, PathBuf};

const SHARDS: usize = 16;
const HEAP_BYTES: usize = 16 * 1024 * 1024;

fn scale(n: u64) -> u64 {
    let div: u64 = std::env::var("ISB_EXAMPLE_SCALE_DIV")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    (n / div).max(8)
}

fn heap_path(dir: &Path) -> PathBuf {
    dir.join("kv.heap")
}

/// Child: insert keys 1..=crash_at, journal each ack, then die mid-flight —
/// key `crash_at + 1` is inserted but never acked.
fn child(dir: &Path, total: u64) {
    nvm::tid::set_tid(0);
    let (map, _) = RHashMap::<MappedNvm, false>::attach_sized(heap_path(dir), SHARDS, HEAP_BYTES)
        .expect("child attach");
    let crash_at = total / 2;
    let mut acked = Vec::new();
    for k in 1..=crash_at {
        map.note_invocation(0);
        assert!(map.insert(0, k));
        acked.push(k.to_string());
    }
    std::fs::write(dir.join("acked"), acked.join("\n")).unwrap();
    // One more insert, never acked: the op the parent must resolve.
    map.note_invocation(0);
    assert!(map.insert(0, crash_at + 1));
    // Crash: no Drop runs, no flush happens, the process just dies.
    std::process::abort();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("child") {
        child(Path::new(&args[2]), args[3].parse().unwrap());
        return;
    }

    let total = scale(2000);
    let crash_at = total / 2;
    let dir = std::env::temp_dir().join(format!("isb_restart_kv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    println!("phase 1: child process fills the mapped KV store, then crashes hard");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["child", dir.to_str().unwrap(), &total.to_string()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn child");
    assert!(!status.success(), "the child is supposed to die abruptly");
    println!("  child died (status: {status}) with one operation in flight");

    println!("phase 2: parent re-attaches {} and recovers", heap_path(&dir).display());
    nvm::tid::set_tid(0);
    let (mut map, summary) =
        RHashMap::<MappedNvm, false>::attach_sized(heap_path(&dir), SHARDS, HEAP_BYTES)
            .expect("parent attach");
    println!(
        "  attach epoch {}, relocated: {}, torn blocks poisoned: {}, leaked blocks swept: {}",
        summary.heap.attach_epoch, summary.heap.relocated, summary.heap.poisoned, summary.swept
    );

    // Every acked key must be present.
    let acked: Vec<u64> = std::fs::read_to_string(dir.join("acked"))
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    for &k in &acked {
        assert!(map.find(0, k), "acked key {k} lost");
    }
    println!("  no acked key lost ({} acked inserts verified)", acked.len());

    // The in-flight insert of `crash_at + 1` is detectably resolved.
    match summary.decision(0) {
        Recovered::Completed(res) => {
            println!(
                "  in-flight insert({}) recovered as Completed(res={res}): it took effect",
                crash_at + 1
            );
            assert!(map.find(0, crash_at + 1));
        }
        Recovered::Restart => {
            println!("  in-flight insert({}) recovered as Restart: re-invoking", crash_at + 1);
            assert!(map.insert(0, crash_at + 1));
        }
    }

    println!("phase 3: the recovered store keeps serving");
    for k in crash_at + 2..=total {
        assert!(map.insert(0, k));
    }
    let keys = map.snapshot_keys();
    assert_eq!(keys, (1..=total).collect::<Vec<u64>>());
    map.check_invariants();
    println!("  final store holds {} keys, invariants OK", keys.len());

    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
    println!("restart_kv: cross-process recovery complete");
}
