//! Quickstart: a detectably recoverable sorted set shared by a few threads.
//!
//! ```text
//! cargo run -p isb-examples --bin quickstart
//! ```

use isb::list::RList;
use nvm::RealNvm;
use std::sync::Arc;

fn main() {
    // Every thread registers a process id (used for the per-process
    // recovery data RD_q/CP_q, statistics and reclamation slots).
    nvm::tid::set_tid(0);

    // `RealNvm` = shared-cache model with real clflush/mfence persistency
    // (exactly how the paper simulates NVRAM). Swap in `nvm::NoPersist` for
    // the private-cache model or `nvm::CountingNvm` to only count flushes.
    let set: Arc<RList<RealNvm>> = Arc::new(RList::new());

    // Single-threaded use: insert / find / delete, each detectably
    // recoverable — after a crash, `recover_insert(pid, k)` would return
    // this operation's response without re-executing its effect.
    assert!(set.insert(0, 42));
    assert!(set.find(0, 42));
    assert!(!set.insert(0, 42), "duplicate insert reports false");

    // Concurrent use: each thread is its own "process".
    let per_thread = isb_examples::scaled(1000);
    let handles: Vec<_> = (1..=3u64)
        .map(|t| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                nvm::tid::set_tid(t as usize);
                for i in 0..per_thread {
                    let k = 100 + t + 3 * i;
                    assert!(set.insert(t as usize, k));
                    assert!(set.find(t as usize, k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = nvm::stats::snapshot();
    let mut set = Arc::into_inner(set).unwrap();
    set.check_invariants();
    println!("set holds {} keys", set.snapshot_keys().len());
    println!(
        "persistency instructions so far: {} barriers, {} flushes, {} syncs",
        stats.pbarrier, stats.pwb, stats.psync
    );
}
