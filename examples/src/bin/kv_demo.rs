//! `kv_demo` — the network-facing KV service end to end, in one process.
//!
//! Starts a [`kvserve::Server`] on a loopback port over a temp heap, then
//! drives it with the journaling [`kvserve::KvClient`]:
//!
//! 1. a batch of `PUT`/`GET`/`DEL` calls plus queue traffic;
//! 2. the **exactly-once replay** check: the last acknowledged request is
//!    re-sent verbatim and the server answers it from the durable response
//!    table — byte-identical response, nothing re-applied (a second `PUT`
//!    of the same key would have returned `false`);
//! 3. a graceful stop, a **server restart over the same heap** (full attach
//!    recovery), and a re-read proving the data and the dedup watermark
//!    both survived.
//!
//! ```text
//! cargo run --release -p isb-examples --bin kv_demo
//! ```

use isb_examples::scaled;
use kvserve::{Config, KvClient, Server};
use std::net::SocketAddr;
use std::path::PathBuf;

fn tmp_heap() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isb-kv-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("kv.heap")
}

fn connect(addr: SocketAddr, id: u64) -> KvClient {
    KvClient::connect(addr, id).expect("connect")
}

fn main() {
    let heap = tmp_heap();
    let n = scaled(500);

    let server = Server::start(Config::new(&heap)).expect("server start");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut c = connect(addr, 42);
    let mut inserted = 0u64;
    for k in 1..=n {
        if c.put(k).expect("put") {
            inserted += 1;
        }
    }
    assert_eq!(inserted, n, "all keys fresh");
    assert!(c.get(n / 2 + 1).expect("get"), "inserted key found");
    assert!(c.del(1).expect("del"), "delete hits");
    assert!(!c.get(1).expect("get"), "deleted key gone");
    // At least two items, so one survives the pre-restart dequeue below.
    let queued = n / 10 + 2;
    for v in 0..queued {
        c.enqueue(v).expect("enq");
    }
    assert_eq!(c.dequeue().expect("deq"), Some(0), "FIFO head");
    println!("applied {} map ops and {} queue ops", n + 3, queued + 1);

    // Exactly-once replay: the retry is answered from the response table.
    let (replayed, original) =
        c.replay_last_acked().expect("replay").expect("an acked request exists");
    assert_eq!(replayed, original, "byte-identical replayed acknowledgement");
    println!("replayed last ack: byte-identical, not re-applied");

    server.stop();

    // Restart over the same heap: full attach recovery, then the session
    // resumes — same client id, same sequence numbers, data intact.
    let server = Server::start(Config::new(&heap)).expect("server restart");
    let addr = server.local_addr();
    let mut c2 = connect(addr, 42);
    // The old session's watermark survived: a fresh client object starts at
    // seq 1, which the table rejects as already-acknowledged territory.
    assert!(c2.put(9999).is_err(), "stale sequence rejected after restart");
    let mut c3 = connect(addr, 7); // a different client works immediately
    assert!(c3.get(n / 2 + 1).expect("get"), "data survived restart");
    assert_eq!(c3.dequeue().expect("deq"), Some(1), "queue order survived");
    println!("restart over the same heap: data + dedup watermark survived");
    server.stop();

    let _ = std::fs::remove_file(&heap);
    println!("kv service demo OK");
}
