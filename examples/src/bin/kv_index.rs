//! A persistent key index built on the sharded, detectably recoverable hash
//! map — the kind of component a storage engine would keep in NVRAM: a
//! membership index whose updates survive crashes with exactly-once
//! semantics, and whose buckets spread hot traffic over many list heads
//! instead of funnelling it through one.
//!
//! ```text
//! cargo run -p isb-examples --bin kv_index
//! ```

use isb::hashmap::RHashMap;
use nvm::RealNvm;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    nvm::tid::set_tid(0);
    // Isb-Opt tuning, 64 shards sharing one recovery area and collector.
    let index: Arc<RHashMap<RealNvm, 1>> = Arc::new(RHashMap::with_shards(64));

    // Bulk-load a key population.
    let start = Instant::now();
    for k in 1..=isb_examples::scaled(10_000) {
        index.insert(0, k * 7 % 65_536 + 1);
    }
    println!("bulk load ({} shards): {:?}", index.shards(), start.elapsed());

    // Mixed read/update traffic from several "clients".
    let ops_per_client = isb_examples::scaled(20_000);
    let start = Instant::now();
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                nvm::tid::set_tid(t);
                let mut hits = 0u64;
                let mut x = (t as u64 + 1) | 1;
                for _ in 0..ops_per_client {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 65_536 + 1;
                    match x % 10 {
                        0 => {
                            index.insert(t, k);
                        }
                        1 => {
                            index.delete(t, k);
                        }
                        _ => {
                            if index.find(t, k) {
                                hits += 1;
                            }
                        }
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();
    println!("4 clients x {ops_per_client} ops in {elapsed:?} ({hits} lookup hits)");

    let stats = nvm::stats::snapshot();
    println!(
        "persistency cost: {} barriers, {} stand-alone flushes, {} syncs",
        stats.pbarrier, stats.pwb, stats.psync
    );
    let mut index = Arc::into_inner(index).unwrap();
    index.check_invariants();
    println!("index holds {} keys; invariants OK", index.snapshot_keys().len());
}
