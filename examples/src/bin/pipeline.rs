//! A crash-safe work pipeline: producers feed a detectably recoverable
//! queue, workers drain it, and a pair of threads hand results across a
//! recoverable exchanger — the queue/exchanger composition the paper's
//! Section 6 sketches.
//!
//! ```text
//! cargo run -p isb-examples --bin pipeline
//! ```

use isb::exchanger::{ExchangeResult, RExchanger};
use isb::queue::RQueue;
use nvm::RealNvm;
use std::sync::Arc;

fn main() {
    nvm::tid::set_tid(0);
    let queue: Arc<RQueue<RealNvm, 1>> = Arc::new(RQueue::new());
    let exch: Arc<RExchanger<RealNvm>> = Arc::new(RExchanger::new());

    // Stage 1: two producers enqueue jobs.
    let jobs_per_producer = isb_examples::scaled(5_000);
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                nvm::tid::set_tid(p as usize);
                for i in 0..jobs_per_producer {
                    // Every enqueue is durable + detectable: a crash after
                    // return can never lose the job, a crash mid-operation
                    // can never double-submit it.
                    queue.enqueue(p as usize, p * jobs_per_producer + i + 1);
                }
            })
        })
        .collect();

    // Stage 2: two workers drain and aggregate; they then reconcile their
    // partial sums through the recoverable exchanger.
    let workers: Vec<_> = (0..2usize)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let exch = Arc::clone(&exch);
            std::thread::spawn(move || {
                let pid = 10 + w;
                nvm::tid::set_tid(pid);
                let mut sum = 0u64;
                let mut drained = 0u64;
                let target = jobs_per_producer; // each worker takes half
                while drained < target {
                    if let Some(v) = queue.dequeue(pid) {
                        sum += v;
                        drained += 1;
                    }
                }
                // Swap partial sums with the other worker.
                loop {
                    match exch.exchange(pid, sum, 50_000_000) {
                        ExchangeResult::Exchanged(other) => return sum + other,
                        ExchangeResult::TimedOut => continue,
                    }
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let totals: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let expect: u64 = (1..=2 * jobs_per_producer).sum();
    assert_eq!(totals[0], expect);
    assert_eq!(totals[1], expect, "both workers agree on the reconciled total");
    println!("pipeline processed {} jobs; reconciled total = {}", 2 * jobs_per_producer, expect);
    let stats = nvm::stats::snapshot();
    println!(
        "persistency cost: {} barriers, {} flushes, {} syncs",
        stats.pbarrier, stats.pwb, stats.psync
    );
}
