//! Crash-recovery demo: runs a workload on the NVM crash simulator, pulls
//! the plug mid-flight, reconstructs an adversarial NVM image, recovers
//! every process, and shows that each interrupted operation either proves
//! it took effect (returning its response) or is re-invoked — exactly once,
//! never twice.
//!
//! ```text
//! cargo run -p isb-examples --bin crash_recovery [seed]
//! ```

use bench_harness::crash::{run_list_scenario, run_queue_scenario, CrashCfg};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("=== detectably recoverable list under a system-wide crash ===");
    let rep = run_list_scenario(CrashCfg {
        procs: 3,
        ops_per_proc: 100,
        keys_per_proc: 10,
        recovery_crashes: 1, // the recovery itself crashes once, too
        seed,
    });
    println!(
        "seed {seed}: {} operations completed before the crash, \
         {} processes died mid-operation, {} NVM words rolled back — \
         all responses replayed exactly-once against the model.",
        rep.completed, rep.pending, rep.rolled_back
    );

    println!();
    println!("=== detectably recoverable queue under a system-wide crash ===");
    let rep = run_queue_scenario(CrashCfg {
        procs: 4,
        ops_per_proc: 80,
        keys_per_proc: 32,
        recovery_crashes: 0,
        seed,
    });
    println!(
        "seed {seed}: {} operations completed, {} words rolled back — \
         no acknowledged value lost, none delivered twice.",
        rep.completed, rep.rolled_back
    );
    println!();
    println!("(run with different seeds to explore different crash points)");
}
