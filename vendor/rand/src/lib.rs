//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to a crates
//! registry, so the workspace vendors the *exact* API subset its tests and
//! benches use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`]. The
//! generator is SplitMix64 — deterministic, seedable, and statistically fine
//! for workload generation (it is not, and does not need to be,
//! cryptographic). Swap this for the real crate by removing the `path` key
//! in the workspace manifest.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 high-quality bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble so nearby seeds diverge immediately.
            Self { state: seed ^ 0xA076_1D64_78BD_642F }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y: i32 = r.gen_range(0..3);
            assert!((0..3).contains(&y));
            let z = r.gen_range(1..=5usize);
            assert!((1..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads = {heads}");
        assert!((0..10_000).all(|_| !r.gen_bool(0.0)));
        assert!((0..10_000).all(|_| r.gen_bool(1.0)));
    }
}
