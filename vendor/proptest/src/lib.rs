//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the workspace's `tests/tests/props.rs` uses:
//! integer-range and tuple strategies, `prop_map`, `prop::collection::vec`,
//! `any::<T>()`, the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! and `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failing case
//! prints its seed and case index instead. Swap for the real crate by
//! removing the `path` key in the workspace manifest.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

/// Error carried out of a failing property (from `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Source of randomness for strategies (deterministic per test).
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name plus an optional `PROPTEST_SEED` override.
    pub fn for_test(name: &str) -> Self {
        let base: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED_CAFE);
        let mut h = base;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        Self(StdRng::seed_from_u64(h))
    }

    #[inline]
    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Full-range strategy for a primitive, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding any bit pattern of an integer.
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

pub mod prop {
    //! Namespace mirroring proptest's `prop` re-export.

    pub mod collection {
        //! Collection strategies.
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: `len` elements of `elem`, length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.rng().gen_range(self.len.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body (non-panicking failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // stringify! goes through a format *argument*: the condition text may
        // itself contain braces (closures, blocks), which a format string
        // would misparse as captures.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests, mirroring proptest's macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let case_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = case_result {
                    panic!(
                        "proptest {} failed at case {}/{} (set PROPTEST_SEED to vary): {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        let s = (0..3u8, 1..20u64);
        for _ in 0..1000 {
            let (o, k) = s.generate(&mut rng);
            assert!(o < 3 && (1..20).contains(&k));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::for_test("lens");
        let s = prop::collection::vec(0..10u64, 0..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 7);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 0..100u64, (a, b) in (0..5u8, 0..5u8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a as u64 + b as u64, (a + b) as u64);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn mapped_strategies_work(v in prop::collection::vec((0..2u8).prop_map(|b| b == 1), 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0..10u64) {
                prop_assert!(false, "boom {x}");
            }
        }
        always_fails();
    }
}
