//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container has no registry access, so this crate implements the subset
//! of criterion's API the workspace's five bench targets use — benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`]/[`Bencher::iter_custom`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! measure-and-print runner instead of criterion's statistical machinery.
//! Reported numbers are the mean over a few samples; good enough to compare
//! algorithms at a glance, not for publication. Swap for the real crate by
//! removing the `path` key in the workspace manifest.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Delegates measurement to `f`, which receives the iteration count and
    /// returns the total elapsed time for that many (possibly amortised)
    /// operations.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Samples per benchmark actually taken by this shim (criterion's
/// `sample_size` is accepted but capped here to keep `cargo bench` quick).
const SHIM_SAMPLES: usize = 3;

fn run_bench(group: &str, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..SHIM_SAMPLES {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let mean = total / SHIM_SAMPLES as u32;
    let name = if group.is_empty() { id.id.clone() } else { format!("{group}/{}", id.id) };
    println!("{name:<48} mean {:>12}   best {:>12}", fmt_duration(mean), fmt_duration(best));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always takes
    /// `SHIM_SAMPLES` samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.into(), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, _c: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench("", &id.into(), &mut f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo bench` the harness receives `--bench`; a stray
            // `--test` (from `cargo test --benches`) means "don't run".
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
