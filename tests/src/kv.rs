//! Shared harness for the KV service conformance suites
//! (`tests/exactly_once.rs` and the shared-heap failover leg of
//! `tests/restart.rs`): journaling clients paired with std-model shadows.
//!
//! Every acknowledged response is checked against the model at the moment
//! it arrives, so a duplicate apply trips an assert at the earliest point
//! it is observable — a re-applied `put`/`del` flips its boolean, a
//! re-applied enqueue duplicates a globally unique value in the drain.

use kvserve::{ClientError, KvClient};
use std::collections::{HashSet, VecDeque};
use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

/// Keys per map client: small enough that duplicate inserts and absent
/// deletes occur constantly (their `false` answers must match the model).
pub const KEYS_PER_CLIENT: u64 = 48;

/// splitmix64 — deterministic, dependency-free.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Polls `port_file` until a server publishes its port (atomic
/// write+rename on the server side, so a read never sees a torn value).
pub fn wait_port(port_file: &Path, what: &str) -> SocketAddr {
    let t0 = Instant::now();
    loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            let port: u16 = s.trim().parse().expect("port file");
            return format!("127.0.0.1:{port}").parse().unwrap();
        }
        assert!(t0.elapsed() < Duration::from_secs(60), "{what}: server never published a port");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One map client with a private key range and a `HashSet` shadow.
pub struct MapClient {
    /// Wire identity (nonzero, unique per client in a run).
    pub id: u64,
    /// First key of the private `KEYS_PER_CLIENT`-wide range.
    pub base: u64,
    /// The live session, absent before connect or when a crash window
    /// swallowed the connection.
    pub conn: Option<KvClient>,
    /// The std-model shadow of this client's key range.
    pub model: HashSet<u64>,
    rng: u64,
}

impl MapClient {
    /// A client with identity `id` over the key range starting at `base`.
    pub fn new(seed: u64, id: u64, base: u64) -> MapClient {
        MapClient {
            id,
            base,
            conn: None,
            model: HashSet::new(),
            rng: seed.wrapping_mul(0xA5A5).wrapping_add(id),
        }
    }

    /// Connects. With `tolerant` (the crash phase) a refused or dying
    /// connection leaves the client offline instead of failing the test —
    /// the `accept` kill window can swallow the handshake.
    pub fn connect(&mut self, addr: SocketAddr, tolerant: bool, ctx: &str) {
        match KvClient::connect(addr, self.id) {
            Ok(c) => self.conn = Some(c),
            Err(_) if tolerant => self.conn = None,
            Err(e) => panic!("{ctx}: client {} connect failed: {e}", self.id),
        }
    }

    /// Runs one seeded op. Returns `false` once the server has crashed
    /// under this client (transport error; the request stays pending).
    pub fn step(&mut self, ctx: &str) -> bool {
        let Some(c) = self.conn.as_mut() else { return false };
        if c.pending().is_some() {
            // A transport error left a request in flight; only `recover`
            // may resolve it.
            return false;
        }
        let key = self.base + splitmix(&mut self.rng) % KEYS_PER_CLIENT;
        let r = match splitmix(&mut self.rng) % 10 {
            0..=3 => c.put(key).map(|fresh| (fresh, self.model.insert(key), "put")),
            4..=6 => c.del(key).map(|hit| (hit, self.model.remove(&key), "del")),
            _ => c.get(key).map(|found| (found, self.model.contains(&key), "get")),
        };
        match r {
            Ok((got, want, op)) => {
                assert_eq!(got, want, "{ctx}: client {} {op} {key} diverged from model", self.id);
                true
            }
            Err(ClientError::Io(_)) => {
                // The model is untouched on a transport error: the op is
                // still pending and is accounted for by `retry_pending`.
                false
            }
            Err(e) => panic!("{ctx}: client {} unexpected rejection: {e}", self.id),
        }
    }

    /// Post-crash recovery against `addr` (the restarted server, or a
    /// shared-heap survivor): exactly-once retry of the pending request
    /// (model applied once), then byte-identical replay of the watermark
    /// request. The retry must come first — if the crashed attempt
    /// completed durably, it advanced the dedup watermark, and the
    /// single-slot table correctly answers `StaleSeq` for anything older.
    pub fn recover(&mut self, addr: SocketAddr, ctx: &str) {
        if self.conn.is_none() {
            self.connect(addr, false, ctx);
        }
        let c = self.conn.as_mut().unwrap();
        c.reconnect(addr).expect("reconnect");
        if let Some(req) = c.pending() {
            let value = c
                .retry_pending()
                .unwrap_or_else(|e| panic!("{ctx}: retry failed: {e}"))
                .expect("pending request was recorded");
            // Whether the crashed attempt applied or the retry did, the
            // operation lands exactly once: the response must equal the
            // model applying it at this point in the sequence.
            let key = req.arg;
            let want = match req.op {
                kvserve::OpCode::Put => self.model.insert(key),
                kvserve::OpCode::Del => self.model.remove(&key),
                kvserve::OpCode::Get => self.model.contains(&key),
                other => panic!("map client issued {other:?}"),
            };
            assert_eq!(
                kvserve::client::as_bool(value),
                want,
                "{ctx}: client {} retried {:?} {key} not exactly-once",
                self.id,
                req.op
            );
        }
        // Replay the acknowledged watermark request: the server must answer
        // from its durable response table, byte-identical, re-applying
        // nothing (a re-applied put/del would flip its boolean).
        if let Some((replayed, original)) =
            c.replay_last_acked().unwrap_or_else(|e| panic!("{ctx}: replay failed: {e}"))
        {
            assert_eq!(
                replayed, original,
                "{ctx}: client {} replayed ack not byte-identical",
                self.id
            );
        }
    }

    /// Final equivalence: membership sweep of the whole private key range.
    pub fn sweep(&mut self, ctx: &str) {
        let c = self.conn.as_mut().unwrap();
        for key in self.base..self.base + KEYS_PER_CLIENT {
            let got = c.get(key).unwrap_or_else(|e| panic!("{ctx}: sweep get failed: {e}"));
            assert_eq!(
                got,
                self.model.contains(&key),
                "{ctx}: client {} final sweep diverged at key {key}",
                self.id
            );
        }
    }
}

/// The queue client with a `VecDeque` shadow. FIFO order is a per-producer
/// guarantee, so exactly one queue client runs per harness.
pub struct QueueClient {
    /// Wire identity.
    pub id: u64,
    /// The live session.
    pub conn: Option<KvClient>,
    /// The std-model shadow.
    pub model: VecDeque<u64>,
    next_val: u64,
    rng: u64,
}

impl QueueClient {
    /// A queue client with identity `id`; enqueued values count up from 1.
    pub fn new(seed: u64, id: u64) -> QueueClient {
        QueueClient {
            id,
            conn: None,
            model: VecDeque::new(),
            next_val: 1,
            rng: seed.wrapping_mul(0x5A5A).wrapping_add(id),
        }
    }

    /// See [`MapClient::connect`].
    pub fn connect(&mut self, addr: SocketAddr, tolerant: bool, ctx: &str) {
        match KvClient::connect(addr, self.id) {
            Ok(c) => self.conn = Some(c),
            Err(_) if tolerant => self.conn = None,
            Err(e) => panic!("{ctx}: queue client connect failed: {e}"),
        }
    }

    /// See [`MapClient::step`].
    pub fn step(&mut self, ctx: &str) -> bool {
        let Some(c) = self.conn.as_mut() else { return false };
        if c.pending().is_some() {
            return false;
        }
        if splitmix(&mut self.rng) % 3 < 2 {
            let v = self.next_val;
            match c.enqueue(v) {
                Ok(()) => {
                    self.model.push_back(v);
                    self.next_val += 1;
                    true
                }
                Err(ClientError::Io(_)) => false,
                Err(e) => panic!("{ctx}: queue enqueue rejected: {e}"),
            }
        } else {
            match c.dequeue() {
                Ok(got) => {
                    assert_eq!(got, self.model.pop_front(), "{ctx}: dequeue out of FIFO order");
                    true
                }
                Err(ClientError::Io(_)) => false,
                Err(e) => panic!("{ctx}: queue dequeue rejected: {e}"),
            }
        }
    }

    /// See [`MapClient::recover`].
    pub fn recover(&mut self, addr: SocketAddr, ctx: &str) {
        if self.conn.is_none() {
            self.connect(addr, false, ctx);
        }
        let c = self.conn.as_mut().unwrap();
        c.reconnect(addr).expect("reconnect");
        if let Some(req) = c.pending() {
            let value = c
                .retry_pending()
                .unwrap_or_else(|e| panic!("{ctx}: queue retry failed: {e}"))
                .expect("pending request was recorded");
            match req.op {
                kvserve::OpCode::Enq => {
                    // Exactly one enqueue of this value lands; the drain
                    // below would see a duplicate or a gap otherwise.
                    self.model.push_back(req.arg);
                    self.next_val = req.arg + 1;
                }
                kvserve::OpCode::Deq => {
                    let got = kvserve::client::as_dequeued(value);
                    assert_eq!(got, self.model.pop_front(), "{ctx}: retried dequeue diverged");
                }
                other => panic!("queue client issued {other:?}"),
            }
        }
        if let Some((replayed, original)) =
            c.replay_last_acked().unwrap_or_else(|e| panic!("{ctx}: replay failed: {e}"))
        {
            assert_eq!(replayed, original, "{ctx}: queue replayed ack not byte-identical");
        }
    }

    /// Final equivalence: drain the queue to empty against the shadow —
    /// catches both duplicated and lost enqueues anywhere in the run.
    pub fn drain(&mut self, ctx: &str) {
        let c = self.conn.as_mut().unwrap();
        loop {
            let got = c.dequeue().unwrap_or_else(|e| panic!("{ctx}: drain dequeue failed: {e}"));
            let want = self.model.pop_front();
            assert_eq!(got, want, "{ctx}: queue drain diverged");
            if got.is_none() {
                return;
            }
        }
    }
}
