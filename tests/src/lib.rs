//! Integration-test helpers (see tests/).

pub mod kv;
