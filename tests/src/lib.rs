//! Integration-test helpers (see tests/).
