//! Property-based tests (proptest): sequential equivalence against model
//! collections under arbitrary operation sequences, and engine/result
//! encoding invariants.

use nvm::CountingNvm;
use proptest::prelude::*;

type M = CountingNvm;

#[derive(Debug, Clone)]
enum SetOp {
    Ins(u64),
    Del(u64),
    Fnd(u64),
}

fn set_ops() -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        (0..3u8, 1..20u64).prop_map(|(o, k)| match o {
            0 => SetOp::Ins(k),
            1 => SetOp::Del(k),
            _ => SetOp::Fnd(k),
        }),
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn isb_list_equals_btreeset(ops in set_ops()) {
        nvm::tid::set_tid(0);
        let mut list = isb::list::RList::<M, 0>::new();
        let mut model = std::collections::BTreeSet::new();
        for op in &ops {
            match *op {
                SetOp::Ins(k) => prop_assert_eq!(list.insert(0, k), model.insert(k)),
                SetOp::Del(k) => prop_assert_eq!(list.delete(0, k), model.remove(&k)),
                SetOp::Fnd(k) => prop_assert_eq!(list.find(0, k), model.contains(&k)),
            }
        }
        prop_assert_eq!(list.snapshot_keys(), model.into_iter().collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn isb_bst_equals_btreeset(ops in set_ops()) {
        nvm::tid::set_tid(0);
        let mut bst = isb::bst::RBst::<M, 1>::new();
        let mut model = std::collections::BTreeSet::new();
        for op in &ops {
            match *op {
                SetOp::Ins(k) => prop_assert_eq!(bst.insert(0, k), model.insert(k)),
                SetOp::Del(k) => prop_assert_eq!(bst.delete(0, k), model.remove(&k)),
                SetOp::Fnd(k) => prop_assert_eq!(bst.find(0, k), model.contains(&k)),
            }
        }
        prop_assert_eq!(bst.snapshot_keys(), model.into_iter().collect::<Vec<_>>());
        bst.check_invariants();
    }

    #[test]
    fn isb_hashmap_equals_hashmap_model(
        ops in set_ops(),
        shards_log2 in 0u32..6,
        tuned in any::<bool>(),
    ) {
        // RHashMap vs a std HashMap model across shard counts (1..32) and
        // both persistency placements. The op stream revisits a 19-key space
        // up to 120 times, so duplicate inserts and absent deletes occur
        // constantly — their detectable `false` responses must match the
        // model's exactly.
        nvm::tid::set_tid(0);
        let shards = 1usize << shards_log2;
        let mut model: std::collections::HashMap<u64, ()> = std::collections::HashMap::new();
        macro_rules! drive {
            ($map:expr) => {{
                let mut map = $map;
                for op in &ops {
                    match *op {
                        SetOp::Ins(k) => {
                            prop_assert_eq!(map.insert(0, k), model.insert(k, ()).is_none())
                        }
                        SetOp::Del(k) => {
                            prop_assert_eq!(map.delete(0, k), model.remove(&k).is_some())
                        }
                        SetOp::Fnd(k) => prop_assert_eq!(map.find(0, k), model.contains_key(&k)),
                    }
                }
                let mut keys: Vec<u64> = model.keys().copied().collect();
                keys.sort_unstable();
                prop_assert_eq!(map.snapshot_keys(), keys);
                map.check_invariants();
            }};
        }
        if tuned {
            drive!(isb::hashmap::RHashMap::<M, 1>::with_shards(shards));
        } else {
            drive!(isb::hashmap::RHashMap::<M, 0>::with_shards(shards));
        }
    }

    #[test]
    fn isb_queue_equals_vecdeque(ops in prop::collection::vec((0..2u8, 0..1000u64), 0..150)) {
        nvm::tid::set_tid(0);
        let mut q = isb::queue::RQueue::<M, 0>::new();
        let mut model = std::collections::VecDeque::new();
        for &(o, v) in &ops {
            if o == 0 {
                q.enqueue(0, v);
                model.push_back(v);
            } else {
                prop_assert_eq!(q.dequeue(0), model.pop_front());
            }
        }
        prop_assert_eq!(q.snapshot_vals(), model.into_iter().collect::<Vec<_>>());
        q.check_invariants();
    }

    #[test]
    fn stack_equals_vec(ops in prop::collection::vec((0..2u8, 0..1000u64), 0..150)) {
        nvm::tid::set_tid(0);
        let s = isb::stack::RStack::<M>::new();
        let mut model = Vec::new();
        for &(o, v) in &ops {
            if o == 0 {
                s.push(0, v);
                model.push(v);
            } else {
                prop_assert_eq!(s.pop(0), model.pop());
            }
        }
    }

    #[test]
    fn tagging_roundtrips(p in any::<u64>()) {
        let p = p & !1; // aligned pointer-like value
        prop_assert_eq!(isb::tag::untagged(isb::tag::tagged(p)), p);
        prop_assert!(isb::tag::is_tagged(isb::tag::tagged(p)));
        prop_assert!(!isb::tag::is_tagged(p));
    }

    #[test]
    fn result_value_encoding_roundtrips(v in 0..(u64::MAX - 16)) {
        let enc = isb::engine::res_val(v);
        prop_assert_eq!(isb::engine::val_of(enc), v);
        prop_assert!(enc != isb::engine::RES_BOT);
        prop_assert!(enc != isb::engine::RES_EMPTY);
        prop_assert!(enc != isb::engine::RES_TRUE);
        prop_assert!(enc != isb::engine::RES_FALSE);
    }

    #[test]
    fn rcas_stamp_packing_roundtrips(val in 0u64..(1<<48), pid in 0usize..64, seq in 0u64..1024) {
        let w = baselines::rcas::pack(val, pid, seq);
        prop_assert_eq!(baselines::rcas::val_part(w), val);
        prop_assert_eq!(baselines::rcas::owner(w), (pid, seq));
    }

    #[test]
    fn dt_mark_packing_roundtrips(p in any::<u64>(), pid in 0usize..64) {
        let p = p & 0x0000_FFFF_FFFF_FFF8;
        let m = baselines::util::marked(p, pid);
        prop_assert!(baselines::util::is_marked(m));
        prop_assert_eq!(baselines::util::ptr_of(m), p);
        prop_assert_eq!(baselines::util::stamp_of(m), pid);
    }
}
