//! Protocol fuzzing for the KV service wire format (satellite of the
//! exactly-once conformance suite).
//!
//! Two layers:
//!
//! * **Parser properties** — `parse_request`/`read_frame` over arbitrary
//!   byte soup: typed errors only, never a panic, never a read past the
//!   validated length, and encode/parse round-trips are lossless.
//! * **Live-socket fuzz** — a shared in-process [`kvserve::Server`] is fed
//!   adversarial streams (garbage bytes, torn length prefixes, truncated
//!   payloads, oversized prefixes, unknown opcodes, wrong versions, zero
//!   client IDs). Every case asserts the *wedge-freedom* invariant: after
//!   the hostile connection, a well-formed request on a fresh connection
//!   still succeeds, so one bad client can never take the service down.

use kvserve::proto::{
    encode_request, parse_request, read_frame, Frame, OpCode, Request, Status, MAX_FRAME, REQ_BYTES,
};
use kvserve::{Config, Server};
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Parser properties (no server)
// ---------------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = Request> {
    (1..=5u8, 1..u64::MAX, any::<u64>(), any::<u64>()).prop_map(|(op, client_id, op_seq, arg)| {
        Request { op: OpCode::from_u8(op).unwrap(), client_id, op_seq, arg }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary payload bytes: `parse_request` answers a typed status or a
    /// request — it never panics, and success implies a perfectly
    /// well-formed frame (re-encoding reproduces the input).
    #[test]
    fn parse_request_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        match parse_request(&bytes) {
            Ok(req) => {
                let frame = encode_request(&req);
                // Strip the length prefix: parse_request sees payloads.
                prop_assert_eq!(&frame[4..], &bytes[..]);
            }
            Err(s) => prop_assert!(s != Status::Ok, "error path must carry an error status"),
        }
    }

    /// Encode → parse round-trip is lossless for every valid request.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let frame = encode_request(&req);
        prop_assert_eq!(frame.len(), 4 + REQ_BYTES);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, REQ_BYTES);
        prop_assert_eq!(parse_request(&frame[4..]), Ok(req));
    }

    /// `read_frame` over arbitrary byte streams: every outcome is a typed
    /// frame, a clean end-of-stream, or an I/O error — never a panic, and
    /// `Oversized`/`BadLength` surface without consuming unbounded memory.
    #[test]
    fn read_frame_total(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let mut cur = Cursor::new(bytes);
        for _ in 0..32 {
            match read_frame(&mut cur, &|| false) {
                Ok(Some(Frame::Payload(p))) => prop_assert!(p.len() <= MAX_FRAME && !p.is_empty()),
                Ok(Some(Frame::Bad(s))) => {
                    prop_assert!(matches!(s, Status::BadLength | Status::Oversized));
                    break; // framing is lost; a server closes here
                }
                Ok(None) | Err(_) => break,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live-socket fuzz
// ---------------------------------------------------------------------------

/// One shared server for every socket case (leaked for the binary's
/// lifetime; each case talks over its own connections).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("isb_proto_fuzz_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut cfg = Config::new(dir.join("kv.heap"));
        cfg.heap_bytes = 8 << 20;
        cfg.shards = 4;
        cfg.workers = 2;
        let server = Server::start(cfg).expect("fuzz server start");
        let addr = server.local_addr();
        std::mem::forget(server);
        addr
    })
}

fn fuzz_conn() -> TcpStream {
    let s = TcpStream::connect(server_addr()).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Reads whatever the server answers until it closes or pauses; only used
/// to make sure replies to hostile input are themselves well-framed.
fn drain_replies(s: &mut TcpStream) -> Vec<Frame> {
    let mut out = Vec::new();
    s.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
    loop {
        match read_frame(s, &|| false) {
            Ok(Some(f)) => out.push(f),
            Ok(None) | Err(_) => return out,
        }
    }
}

/// The wedge-freedom probe: a fresh connection with a well-formed request
/// must still get `Status::Ok`. Distinct client IDs per probe keep the
/// sequence discipline trivial.
fn assert_alive() {
    static NEXT_PROBE: AtomicU64 = AtomicU64::new(1 << 32);
    let id = NEXT_PROBE.fetch_add(1, Ordering::Relaxed);
    let mut c = kvserve::KvClient::connect(server_addr(), id).expect("probe connect");
    assert!(c.put(id).expect("probe put"), "fresh key must insert");
}

/// Builds a hostile byte stream from a strategy-chosen shape.
fn hostile_stream(kind: u8, blob: &[u8], len32: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    match kind % 6 {
        // Raw garbage: whatever the strategy produced, verbatim.
        0 => bytes.extend_from_slice(blob),
        // Torn length prefix: fewer than 4 bytes, then EOF.
        1 => bytes.extend_from_slice(&len32.to_le_bytes()[..(blob.len() % 4)]),
        // Truncated payload: honest prefix, missing tail.
        2 => {
            let claim = (blob.len() as u32).saturating_add(1 + len32 % 64);
            bytes.extend_from_slice(&claim.min(MAX_FRAME as u32).to_le_bytes());
            bytes.extend_from_slice(blob);
        }
        // Oversized prefix: the server must answer `Oversized` and close
        // without ever allocating the claimed length.
        3 => {
            let claim = (MAX_FRAME as u32 + 1).saturating_add(len32);
            bytes.extend_from_slice(&claim.to_le_bytes());
            bytes.extend_from_slice(blob);
        }
        // Well-framed garbage payload (wrong size / version / opcode).
        4 => {
            bytes.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            bytes.extend_from_slice(blob);
        }
        // Valid framing, hostile fields: version/opcode/client_id from the
        // blob, so `BadVersion`/`UnknownOp`/`BadClientId` all get hit.
        _ => {
            let mut payload = [0u8; REQ_BYTES];
            for (i, b) in blob.iter().take(REQ_BYTES).enumerate() {
                payload[i] = *b;
            }
            bytes.extend_from_slice(&(REQ_BYTES as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Hostile streams against the live server: replies (if any) are
    /// well-framed typed errors, the connection ends cleanly, and the
    /// server keeps serving well-formed clients afterwards.
    #[test]
    fn live_server_survives_garbage(
        kind in any::<u8>(),
        blob in prop::collection::vec(any::<u8>(), 0..80),
        len32 in any::<u32>(),
    ) {
        let bytes = hostile_stream(kind, &blob, len32);
        let mut s = fuzz_conn();
        // The server may close mid-write on fatal frames; that is a valid
        // outcome, not a failure.
        let _ = s.write_all(&bytes);
        let _ = s.flush();
        let _ = s.shutdown(std::net::Shutdown::Write);
        for f in drain_replies(&mut s) {
            match f {
                Frame::Payload(p) => {
                    // A hostile blob can (rarely) form a valid request, so
                    // `Ok` is legitimate — the invariant is well-formedness.
                    kvserve::proto::parse_response(&p)
                        .expect("server reply must be well-formed");
                }
                Frame::Bad(s) => prop_assert!(false, "malformed server reply: {s:?}"),
            }
        }
        assert_alive();
    }
}

/// Deterministic spot checks for each typed rejection (the proptest sweep
/// above covers the space; these pin the exact status per shape).
#[test]
fn typed_rejections_pinned() {
    let cases: &[(&[u8], Status)] = &[
        // Oversized length prefix.
        (&[0xff, 0xff, 0xff, 0xff], Status::Oversized),
        // Zero-length frame.
        (&[0, 0, 0, 0], Status::BadLength),
        // Well-framed but wrong payload size.
        (&[2, 0, 0, 0, 1, 1], Status::BadLength),
    ];
    for (bytes, want) in cases {
        let mut s = fuzz_conn();
        s.write_all(bytes).unwrap();
        s.flush().unwrap();
        let reply = read_frame(&mut s, &|| false).expect("reply").expect("frame");
        let Frame::Payload(p) = reply else { panic!("reply not a payload frame") };
        let resp = kvserve::proto::parse_response(&p).expect("well-formed reply");
        assert_eq!(resp.status, *want, "input {bytes:?}");
        // Fatal statuses close the stream.
        let mut rest = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.read_to_end(&mut rest).expect("clean close");
        assert!(rest.is_empty(), "no trailing bytes after fatal reply");
    }

    // Field-level rejections on well-framed requests (BadVersion is fatal,
    // the rest are not; each must come back as its exact typed status).
    let reqs: &[([u8; REQ_BYTES], Status)] = &[
        {
            let mut p = [0u8; REQ_BYTES];
            p[0] = 7; // bad version
            (p, Status::BadVersion)
        },
        {
            let mut p = [0u8; REQ_BYTES];
            p[0] = 1;
            p[1] = 200; // unknown opcode
            p[2] = 1; // nonzero client id
            (p, Status::UnknownOp)
        },
        {
            let mut p = [0u8; REQ_BYTES];
            p[0] = 1;
            p[1] = 3; // GET with client_id 0
            (p, Status::BadClientId)
        },
    ];
    for (payload, want) in reqs {
        let mut s = fuzz_conn();
        s.write_all(&(REQ_BYTES as u32).to_le_bytes()).unwrap();
        s.write_all(payload).unwrap();
        s.flush().unwrap();
        let reply = read_frame(&mut s, &|| false).expect("reply").expect("frame");
        let Frame::Payload(p) = reply else { panic!("reply not a payload frame") };
        let resp = kvserve::proto::parse_response(&p).expect("well-formed reply");
        assert_eq!(resp.status, *want);
    }
    assert_alive();
}
