//! Linearizability stress tests: small concurrent histories recorded with a
//! global clock and verified by the WGL checker — for the ISB list, queue,
//! BST and the elimination stack.

use lincheck::specs::{QueueOp, QueueSpec, SetOp, SetSpec, StackOp, StackSpec};
use lincheck::{clock, is_linearizable, OpRec};
use nvm::CountingNvm;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

type M = CountingNvm;

fn record<O: Clone, R: Clone>(
    log: &Mutex<Vec<OpRec<O, R>>>,
    thread: usize,
    op: O,
    f: impl FnOnce() -> R,
) {
    let invoked = clock::now();
    let ret = f();
    let returned = clock::now();
    log.lock().unwrap().push(OpRec { thread, op, ret, invoked, returned });
}

fn set_history<S: Send + Sync + 'static>(
    s: Arc<S>,
    seed: u64,
    key_space: u64,
    ops_per_thread: usize,
    ins: impl Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
    del: impl Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
    fnd: impl Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
) -> Vec<OpRec<SetOp, bool>> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let threads = 3;
    let hs: Vec<_> = (0..threads)
        .map(|t| {
            let s = Arc::clone(&s);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                nvm::tid::set_tid(t);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (t as u64) << 16);
                for _ in 0..ops_per_thread {
                    let k = rng.gen_range(1..=key_space);
                    match rng.gen_range(0..3) {
                        0 => record(&log, t, SetOp::Insert(k), || ins(&s, t, k)),
                        1 => record(&log, t, SetOp::Delete(k), || del(&s, t, k)),
                        _ => record(&log, t, SetOp::Find(k), || fnd(&s, t, k)),
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap()
}

#[test]
fn isb_list_histories_are_linearizable() {
    for seed in 0..25 {
        let list = Arc::new(isb::list::RList::<M, 0>::new());
        let h = set_history(
            list,
            seed,
            3, // tiny key space → heavy conflicts
            7,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "seed {seed}: history not linearizable: {h:?}");
    }
}

#[test]
fn isb_list_tuned_histories_are_linearizable() {
    for seed in 100..115 {
        let list = Arc::new(isb::list::RList::<M, 1>::new());
        let h = set_history(
            list,
            seed,
            3,
            7,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "seed {seed}: {h:?}");
    }
}

#[test]
fn isb_hashmap_histories_are_linearizable() {
    // Few shards + tiny key space: the keys collide inside buckets, so the
    // shared RecArea sees concurrent publications from every process while
    // helping crosses threads within a bucket.
    for seed in 400..415 {
        let map = Arc::new(isb::hashmap::RHashMap::<M, 0>::with_shards(2));
        let h = set_history(
            map,
            seed,
            3,
            7,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "seed {seed}: {h:?}");
    }
}

#[test]
fn isb_bst_histories_are_linearizable() {
    for seed in 200..220 {
        let bst = Arc::new(isb::bst::RBst::<M, 0>::new());
        let h = set_history(
            bst,
            seed,
            3,
            7,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "seed {seed}: {h:?}");
    }
}

#[test]
fn baseline_lists_histories_are_linearizable() {
    for seed in 300..312 {
        let dt = Arc::new(baselines::dt_list::DtList::<M>::new());
        let h = set_history(
            dt,
            seed,
            3,
            6,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "DT seed {seed}: {h:?}");

        let caps = Arc::new(baselines::capsules_list::CapsulesList::<M, true>::new());
        let h = set_history(
            caps,
            seed,
            3,
            6,
            |s, t, k| s.insert(t, k),
            |s, t, k| s.delete(t, k),
            |s, t, k| s.find(t, k),
        );
        assert!(is_linearizable(&SetSpec, &h), "Capsules seed {seed}: {h:?}");
    }
}

#[test]
fn isb_queue_histories_are_linearizable() {
    for seed in 0..25u64 {
        let q = Arc::new(isb::queue::RQueue::<M, 0>::new());
        let log = Arc::new(Mutex::new(Vec::new()));
        let hs: Vec<_> = (0..3)
            .map(|t| {
                let q = Arc::clone(&q);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (t as u64) << 8);
                    for i in 0..7u64 {
                        if rng.gen_bool(0.5) {
                            let v = (t as u64 + 1) * 100 + i;
                            record(&log, t, QueueOp::Enq(v), || {
                                q.enqueue(t, v);
                                None
                            });
                        } else {
                            record(&log, t, QueueOp::Deq, || q.dequeue(t));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let h = Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap();
        assert!(is_linearizable(&QueueSpec, &h), "seed {seed}: {h:?}");
    }
}

#[test]
fn elimination_stack_histories_are_linearizable() {
    for seed in 0..20u64 {
        let s = Arc::new(isb::stack::RStack::<M>::new());
        let log = Arc::new(Mutex::new(Vec::new()));
        let hs: Vec<_> = (0..3)
            .map(|t| {
                let s = Arc::clone(&s);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (t as u64) << 8);
                    for i in 0..7u64 {
                        if rng.gen_bool(0.5) {
                            let v = (t as u64 + 1) * 100 + i;
                            record(&log, t, StackOp::Push(v), || {
                                s.push(t, v);
                                None
                            });
                        } else {
                            record(&log, t, StackOp::Pop, || s.pop(t));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let h = Arc::try_unwrap(log).map_err(|_| ()).unwrap().into_inner().unwrap();
        assert!(is_linearizable(&StackSpec, &h), "seed {seed}: {h:?}");
    }
}
