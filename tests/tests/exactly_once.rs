//! Exactly-once conformance suite for the network-facing KV service.
//!
//! The contract under test: a client that names every request with a
//! `(client_id, op_seq)` operation ID may retry any request after a server
//! crash and observe **exactly-once** semantics — the retry returns the
//! original response if the crashed attempt completed (byte-identical,
//! nothing re-applied), and applies the operation fresh if it did not. The
//! server proves completion through the durable response table in the
//! mapped heap, resolved by the attach pipeline before the restarted server
//! accepts a single connection.
//!
//! Harness shape (the `restart.rs` pattern): the parent spawns *this test
//! binary* as a child running only [`kv_server_child`], with
//! `ISB_KV_KILL_POINT`/`ISB_KV_KILL_AFTER` injected so the server SIGKILLs
//! itself at a seeded point on the request path:
//!
//! * `accept`  — right after accepting a connection;
//! * `parse`   — after parsing a request, before any durable intent;
//! * `invoke`  — after the durable intent record, before the apply;
//! * `preack`  — after the apply is finalized, before the ack is written;
//! * `postack` — after the ack reached the socket.
//!
//! Parent-side clients ([`isb_tests::kv`]) drive seeded workloads against
//! std-model shadows (`HashSet` per map client over a private key range,
//! `VecDeque` for the single queue client) and assert **every** response
//! against the model — a duplicate apply surfaces immediately as a
//! `put`/`del` answering the wrong boolean or a dequeue yielding an
//! out-of-order value. After the kill, the parent restarts the server (no
//! kill env: full recovery), then:
//!
//! 1. retries each client's *pending* (unacknowledged) request with its
//!    original sequence number and asserts the response matches the model
//!    applying that operation exactly once;
//! 2. replays each client's acknowledged *watermark* request and asserts
//!    the byte-identical original response (served from the response
//!    table; the retry runs first because a durably-completed pending op
//!    advances the watermark, making anything older correctly `StaleSeq`);
//! 3. continues the seeded workload;
//! 4. closes with full model equivalence — a membership sweep of every map
//!    client's key range and a complete queue drain.
//!
//! Matrix: `ISB_KV_SEEDS` seeds (default 2) x all five kill points — 10
//! seeded SIGKILL rounds per default `cargo test` run.

use isb_tests::kv::{wait_port, MapClient, QueueClient, KEYS_PER_CLIENT};
use kvserve::{Config, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAP_CLIENTS: u64 = 3;
const QUEUE_CLIENT: u64 = 100;
const HEAP_BYTES: usize = 8 << 20;
const PRE_CRASH_ROUNDS: usize = 400;
const POST_CRASH_ROUNDS: usize = 60;

fn seeds() -> u64 {
    std::env::var("ISB_KV_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn map_clients(seed: u64) -> Vec<MapClient> {
    (1..=MAP_CLIENTS).map(|i| MapClient::new(seed, i, 1 + (i - 1) * KEYS_PER_CLIENT)).collect()
}

// ---------------------------------------------------------------------------
// Child mode: the server process
// ---------------------------------------------------------------------------

/// The server half. Ignored in normal runs; the parent spawns this test by
/// name with `ISB_KV_DIR` set (and, for the crash phase, the kill env that
/// [`kvserve::Server`] reads at start). Publishes the bound port atomically
/// once the server is accepting — which, on restart, doubles as the
/// "attach recovery finished" handshake.
#[test]
#[ignore = "child half of the exactly-once harness; spawned by the parent test"]
fn kv_server_child() {
    let Ok(dir) = std::env::var("ISB_KV_DIR") else { return };
    let dir = PathBuf::from(dir);
    let mut cfg = Config::new(dir.join("kv.heap"));
    cfg.heap_bytes = HEAP_BYTES;
    cfg.shards = 4;
    cfg.workers = 2;
    let server = Server::start(cfg).expect("child server start");
    let tmp = dir.join("port.tmp");
    std::fs::write(&tmp, server.local_addr().port().to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("port")).unwrap();
    let stop = dir.join("stop");
    while !stop.exists() {
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}

// ---------------------------------------------------------------------------
// Parent-side harness
// ---------------------------------------------------------------------------

fn spawn_server(dir: &Path, kill: Option<(&str, u64)>) -> std::process::Child {
    let _ = std::fs::remove_file(dir.join("port"));
    let mut cmd = std::process::Command::new(std::env::current_exe().unwrap());
    cmd.args(["--exact", "kv_server_child", "--include-ignored", "--nocapture"])
        .env("ISB_KV_DIR", dir)
        .env_remove("ISB_KV_KILL_POINT")
        .env_remove("ISB_KV_KILL_AFTER")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some((point, after)) = kill {
        cmd.env("ISB_KV_KILL_POINT", point).env("ISB_KV_KILL_AFTER", after.to_string());
    }
    cmd.spawn().expect("spawn server child")
}

/// One full SIGKILL round at `point` with `seed`.
fn run_round(point: &str, seed: u64) {
    let dir =
        std::env::temp_dir().join(format!("isb_kv_once_{}_{point}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ctx = format!("kill={point} seed={seed}");

    // `accept` counts connections (4 clients connect); the other points
    // count requests, so the countdown lands mid-workload.
    let kill_after = if point == "accept" { 1 + seed % 4 } else { 5 + (seed * 13) % 60 };
    let mut child = spawn_server(&dir, Some((point, kill_after)));
    let addr = wait_port(&dir.join("port"), &ctx);

    let mut maps = map_clients(seed);
    let mut queue = QueueClient::new(seed, QUEUE_CLIENT);
    for m in &mut maps {
        m.connect(addr, true, &ctx);
    }
    queue.connect(addr, true, &ctx);

    // Drive until the injected SIGKILL surfaces as a transport error on
    // every connected client (round-robin so the kill can land under any
    // of them).
    let mut live = true;
    for _ in 0..PRE_CRASH_ROUNDS {
        if !live {
            break;
        }
        live = false;
        for m in &mut maps {
            live |= m.step(&ctx);
        }
        live |= queue.step(&ctx);
    }
    assert!(!live, "{ctx}: server survived {PRE_CRASH_ROUNDS} rounds without dying");
    child.wait().expect("reap killed server");

    // Restart with no kill env: the attach pipeline replays, scrubs, and
    // resolves every in-flight op ID before the port file reappears.
    let mut child = spawn_server(&dir, None);
    let addr = wait_port(&dir.join("port"), &ctx);

    for m in &mut maps {
        m.recover(addr, &ctx);
    }
    queue.recover(addr, &ctx);

    // The session continues: same clients, same sequence counters.
    for _ in 0..POST_CRASH_ROUNDS {
        for m in &mut maps {
            assert!(m.step(&ctx), "{ctx}: post-restart map step failed");
        }
        assert!(queue.step(&ctx), "{ctx}: post-restart queue step failed");
    }

    // Full model equivalence.
    for m in &mut maps {
        m.sweep(&ctx);
    }
    queue.drain(&ctx);

    std::fs::write(dir.join("stop"), b"ok").unwrap();
    let status = child.wait().expect("reap server");
    assert!(status.success(), "{ctx}: clean shutdown failed");
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_matrix(point: &str) {
    for seed in 0..seeds() {
        run_round(point, seed);
    }
}

#[test]
fn exactly_once_kill_accept() {
    run_matrix("accept");
}

#[test]
fn exactly_once_kill_parse() {
    run_matrix("parse");
}

#[test]
fn exactly_once_kill_invoke() {
    run_matrix("invoke");
}

#[test]
fn exactly_once_kill_preack() {
    run_matrix("preack");
}

#[test]
fn exactly_once_kill_postack() {
    run_matrix("postack");
}

/// No-crash control: the same workload and final equivalence checks against
/// a server that is never killed, plus a graceful stop/restart in the
/// middle — isolates harness bugs from recovery bugs.
#[test]
fn exactly_once_no_crash_control() {
    let dir = std::env::temp_dir().join(format!("isb_kv_once_{}_control", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ctx = "control";

    let mut child = spawn_server(&dir, None);
    let addr = wait_port(&dir.join("port"), ctx);
    let mut maps = map_clients(7);
    let mut queue = QueueClient::new(7, QUEUE_CLIENT);
    for m in &mut maps {
        m.connect(addr, false, ctx);
    }
    queue.connect(addr, false, ctx);
    for _ in 0..120 {
        for m in &mut maps {
            assert!(m.step(ctx));
        }
        assert!(queue.step(ctx));
    }

    // Graceful stop + restart: recovery with nothing in flight.
    std::fs::write(dir.join("stop"), b"ok").unwrap();
    assert!(child.wait().expect("reap").success());
    let _ = std::fs::remove_file(dir.join("stop"));
    let mut child = spawn_server(&dir, None);
    let addr = wait_port(&dir.join("port"), ctx);
    for m in &mut maps {
        m.recover(addr, ctx);
        m.sweep(ctx);
    }
    queue.recover(addr, ctx);
    queue.drain(ctx);

    std::fs::write(dir.join("stop"), b"ok").unwrap();
    assert!(child.wait().expect("reap").success());
    let _ = std::fs::remove_dir_all(&dir);
}
