//! Disjoint-range response stress: each thread owns a private key range of
//! one shared structure and asserts EVERY response against its own
//! sequential model. Any transient wrong answer — the shape of the
//! helper-completed-but-invoker-backtracked engine race this test was built
//! to catch (the tagging phase's Algorithm-1 completion check) — fails
//! loudly with the op index.
//!
//! Ops per thread scale with `ISB_STRESS_OPS` (default keeps CI fast; the
//! race that motivated this test reproduced at ~1 in 40M ops before the
//! fix, so soak runs want `ISB_STRESS_OPS=4000000` repeated).

use isb::hashmap::RHashMap;
use isb::list::RList;
use std::sync::Arc;

fn ops() -> u64 {
    std::env::var("ISB_STRESS_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(150_000)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_disjoint<S, I, D, F>(s: Arc<S>, threads: usize, insert: I, delete: D, find: F)
where
    S: Send + Sync + 'static,
    I: Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
    D: Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
    F: Fn(&S, usize, u64) -> bool + Send + Sync + Copy + 'static,
{
    let per = ops();
    let hs: Vec<_> = (0..threads)
        .map(|t| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                nvm::tid::set_tid(t + 1);
                let pid = t + 1;
                let lo = 1 + t as u64 * 1000;
                let hi = lo + 999;
                let mut model = std::collections::HashSet::new();
                let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 7);
                for i in 0..per {
                    let r = splitmix(&mut rng);
                    let key = lo + (r >> 16) % (hi - lo + 1);
                    match r % 10 {
                        0..=3 => assert_eq!(
                            insert(&s, pid, key),
                            model.insert(key),
                            "t{t} op {i}: insert({key}) response diverged"
                        ),
                        4..=6 => assert_eq!(
                            delete(&s, pid, key),
                            model.remove(&key),
                            "t{t} op {i}: delete({key}) response diverged"
                        ),
                        _ => assert_eq!(
                            find(&s, pid, key),
                            model.contains(&key),
                            "t{t} op {i}: find({key}) response diverged"
                        ),
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
}

#[test]
fn hashmap_responses_match_disjoint_models() {
    let map: Arc<RHashMap<nvm::CountingNvm, 0>> = Arc::new(RHashMap::with_shards(8));
    run_disjoint(
        map,
        3,
        |m, p, k| m.insert(p, k),
        |m, p, k| m.delete(p, k),
        |m, p, k| m.find(p, k),
    );
}

#[test]
fn tuned_hashmap_responses_match_disjoint_models() {
    let map: Arc<RHashMap<nvm::CountingNvm, 1>> = Arc::new(RHashMap::with_shards(4));
    run_disjoint(
        map,
        3,
        |m, p, k| m.insert(p, k),
        |m, p, k| m.delete(p, k),
        |m, p, k| m.find(p, k),
    );
}

#[test]
fn list_responses_match_disjoint_models() {
    // One bucket: maximal cross-range interference inside a single chain.
    let list: Arc<RList<nvm::CountingNvm, 0>> = Arc::new(RList::new());
    run_disjoint(
        list,
        3,
        |l, p, k| l.insert(p, k),
        |l, p, k| l.delete(p, k),
        |l, p, k| l.find(p, k),
    );
}
