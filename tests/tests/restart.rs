//! True cross-process restart recovery: a child process hammers a mapped
//! `RHashMap` with a write-ahead intent/ack journal, the parent `SIGKILL`s
//! it mid-workload, re-attaches the heap **from the parent process**, and
//! verifies
//!
//! 1. every **acked** operation is reflected in the recovered map (and its
//!    acked response was correct at the time),
//! 2. the at-most-one **unacked** in-flight operation per process is
//!    *detectably* resolved: the attach-time Op-Recover replay either
//!    reports `Completed(res)` (its durable response — applied to the
//!    model) or `Restart` (it provably did not take effect — re-invoked),
//! 3. a full equivalence pass against a `std::collections::HashMap` model
//!    holds, plus the structural invariants.
//!
//! ## Journal protocol (per worker thread, one log file per pid)
//!
//! ```text
//! note_invocation(pid)          // CP_q := 0, persisted — the "system" half
//! write "S <seq> <op> <key>\n"  // intent record (one write syscall)
//! res = map.op(pid, key)
//! write "A <seq> <res>\n"       // ack record
//! ```
//!
//! `note_invocation` *before* the intent record is what makes every kill
//! point unambiguous: if the S record exists, `CP_q` was already cleared for
//! this operation, so a recovery decision of `Completed` can only refer to
//! *this* operation (never to the previous one), and `Restart` proves it
//! did not take effect. If the S record is missing, the operation never ran.
//!
//! The child is this same test binary re-executed with `--exact
//! restart_child_worker --include-ignored` and `ISB_RESTART_DIR` set.
//!
//! Seeds: `ISB_RESTART_SEEDS` (default 20) seeded kill points; every failure
//! message includes the seed.

use isb::hashmap::RHashMap;
use isb::recovery::Recovered;
use nvm::MappedNvm;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const HEAP_BYTES: usize = 16 * 1024 * 1024;
const WORKERS: usize = 3; // pids 1..=WORKERS, disjoint key ranges
const KEYS_PER_WORKER: u64 = 1000;

/// `RES_TRUE` of the result encoding (isb::engine::RES_TRUE).
const RES_TRUE: u64 = 2;

fn heap_path(dir: &Path) -> PathBuf {
    dir.join("heap.img")
}

fn log_path(dir: &Path, pid: usize) -> PathBuf {
    dir.join(format!("log_{pid}.txt"))
}

fn key_range(pid: usize) -> (u64, u64) {
    let lo = 1 + (pid as u64 - 1) * KEYS_PER_WORKER;
    (lo, lo + KEYS_PER_WORKER - 1)
}

/// Tiny deterministic PRNG (splitmix64) — keeps child and parent free of
/// any shared-seed coupling beyond the seed value itself.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Child mode
// ---------------------------------------------------------------------------

/// The child workload. Ignored in normal runs; the parent spawns this test
/// by name with `ISB_RESTART_DIR` set and kills it mid-loop.
#[test]
#[ignore = "child half of the restart harness; spawned by the parent test"]
fn restart_child_worker() {
    let Ok(dir) = std::env::var("ISB_RESTART_DIR") else { return };
    let dir = PathBuf::from(dir);
    let seed: u64 = std::env::var("ISB_RESTART_SEED").unwrap().parse().unwrap();

    nvm::tid::set_tid(0);
    let (map, _summary) =
        RHashMap::<MappedNvm, false>::attach_sized(heap_path(&dir), SHARDS, HEAP_BYTES)
            .expect("child attach");
    let map = Arc::new(map);
    // Signal readiness only once the heap is fully created.
    std::fs::write(dir.join("ready"), b"ok").unwrap();

    let handles: Vec<_> = (1..=WORKERS)
        .map(|pid| {
            let map = Arc::clone(&map);
            let dir = dir.clone();
            std::thread::spawn(move || {
                nvm::tid::set_tid(pid);
                let mut log =
                    OpenOptions::new().create(true).append(true).open(log_path(&dir, pid)).unwrap();
                let (lo, hi) = key_range(pid);
                let mut rng = seed.wrapping_mul(31).wrapping_add(pid as u64);
                let mut seq = 0u64;
                loop {
                    seq += 1;
                    let key = lo + splitmix(&mut rng) % (hi - lo + 1);
                    let op = match splitmix(&mut rng) % 10 {
                        0..=3 => 'i',
                        4..=6 => 'd',
                        _ => 'f',
                    };
                    // System half of the invocation BEFORE the intent record
                    // (see module docs).
                    map.note_invocation(pid);
                    log.write_all(format!("S {seq} {op} {key}\n").as_bytes()).unwrap();
                    let res = match op {
                        'i' => map.insert(pid, key),
                        'd' => map.delete(pid, key),
                        _ => map.find(pid, key),
                    };
                    log.write_all(format!("A {seq} {}\n", res as u8).as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join(); // unreachable: the loop runs until SIGKILL
    }
}

// ---------------------------------------------------------------------------
// Parent mode
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Insert,
    Delete,
    Find,
}

#[derive(Debug)]
struct LogEntry {
    seq: u64,
    op: Op,
    key: u64,
    ack: Option<bool>,
}

/// Parses one pid's journal. Incomplete trailing lines (the kill landed
/// mid-`write`) are ignored: a missing S means the op never ran; a missing
/// A means the op is in flight.
fn parse_log(path: &Path) -> Vec<LogEntry> {
    let Ok(raw) = std::fs::read(path) else { return Vec::new() };
    let text = String::from_utf8_lossy(&raw);
    let mut entries: Vec<LogEntry> = Vec::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final record
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("S") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let op = match it.next().unwrap() {
                    "i" => Op::Insert,
                    "d" => Op::Delete,
                    _ => Op::Find,
                };
                let key: u64 = it.next().unwrap().parse().unwrap();
                entries.push(LogEntry { seq, op, key, ack: None });
            }
            Some("A") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let res = it.next().unwrap() == "1";
                let last = entries.last_mut().expect("A without S");
                assert_eq!(last.seq, seq, "ack out of order in {path:?}");
                last.ack = Some(res);
            }
            _ => panic!("malformed journal line {line:?} in {path:?}"),
        }
    }
    entries
}

/// Applies `op` to the model; returns the expected (linearized) response.
fn model_apply(model: &mut HashMap<u64, u64>, op: Op, key: u64, seq: u64) -> bool {
    match op {
        Op::Insert => model.insert(key, seq).is_none(),
        Op::Delete => model.remove(&key).is_some(),
        Op::Find => model.contains_key(&key),
    }
}

fn run_one_seed(seed: u64) -> (u64, u64) {
    let dir = std::env::temp_dir().join(format!("isb_restart_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Spawn the child: this test binary, child test only.
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "restart_child_worker", "--include-ignored", "--nocapture"])
        .env("ISB_RESTART_DIR", &dir)
        .env("ISB_RESTART_SEED", seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    // Wait until the child created the heap, then let it run a seeded while.
    let t0 = Instant::now();
    while !dir.join("ready").exists() {
        assert!(t0.elapsed() < Duration::from_secs(60), "seed {seed}: child never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
    let kill_after = Duration::from_millis(30 + (seed * 37) % 170);
    std::thread::sleep(kill_after);
    child.kill().expect("SIGKILL child"); // SIGKILL on unix: no cleanup runs
    child.wait().expect("reap child");

    // Re-attach FROM THIS PROCESS and recover.
    nvm::tid::set_tid(0);
    let (mut map, summary) =
        RHashMap::<MappedNvm, false>::attach_sized(heap_path(&dir), SHARDS, HEAP_BYTES)
            .unwrap_or_else(|e| panic!("seed {seed}: parent attach failed: {e}"));

    let mut union: HashMap<u64, u64> = HashMap::new();
    let mut acked_ops = 0u64;
    let mut inflight_ops = 0u64;
    for pid in 1..=WORKERS {
        let entries = parse_log(&log_path(&dir, pid));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n = entries.len();
        for (i, e) in entries.iter().enumerate() {
            match e.ack {
                Some(res) => {
                    // 1. Acked ops: the logged response must match the
                    // sequential model of this pid's disjoint key range.
                    let want = model_apply(&mut model, e.op, e.key, e.seq);
                    assert_eq!(
                        res, want,
                        "seed {seed} pid {pid} seq {} ({:?} {}): acked response wrong",
                        e.seq, e.op, e.key
                    );
                    acked_ops += 1;
                }
                None => {
                    // 2. The in-flight op: must be the last record, and the
                    // recovery decision resolves it detectably.
                    assert_eq!(i, n - 1, "seed {seed} pid {pid}: unacked op not last");
                    inflight_ops += 1;
                    match summary.decision(pid) {
                        Recovered::Completed(res) => {
                            // The operation took effect; its durable response
                            // must match the model exactly.
                            let res = res == RES_TRUE;
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(
                                res, want,
                                "seed {seed} pid {pid} seq {} ({:?} {}): recovered response wrong",
                                e.seq, e.op, e.key
                            );
                        }
                        Recovered::Restart => {
                            // The operation did not take effect: re-invoke it
                            // with its original arguments (the paper's
                            // re-invocation semantics) and then apply it.
                            let res = match e.op {
                                Op::Insert => map.insert(pid, e.key),
                                Op::Delete => map.delete(pid, e.key),
                                Op::Find => map.find(pid, e.key),
                            };
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(
                                res, want,
                                "seed {seed} pid {pid} seq {} ({:?} {}): re-invoked response wrong",
                                e.seq, e.op, e.key
                            );
                        }
                    }
                }
            }
        }
        if entries.last().is_none_or(|e| e.ack.is_some()) {
            // No op in flight for this pid. A `Completed` decision can then
            // only name the last *published* (acked, mutating) operation —
            // cross-check its durable response against the journal.
            if let Recovered::Completed(res) = summary.decision(pid) {
                let last_mut = entries.iter().rev().find(|e| e.op != Op::Find);
                let logged = last_mut
                    .unwrap_or_else(|| {
                        panic!("seed {seed} pid {pid}: Completed with no mutating op logged")
                    })
                    .ack
                    .unwrap();
                assert_eq!(
                    res == RES_TRUE,
                    logged,
                    "seed {seed} pid {pid}: stale Completed response diverges from journal"
                );
            }
        }
        union.extend(model);
    }

    // 3. Full equivalence pass against the std::HashMap model.
    for pid in 1..=WORKERS {
        let (lo, hi) = key_range(pid);
        for k in lo..=hi {
            assert_eq!(
                map.find(0, k),
                union.contains_key(&k),
                "seed {seed}: equivalence diverges at key {k}"
            );
        }
    }
    let mut want: Vec<u64> = union.keys().copied().collect();
    want.sort_unstable();
    assert_eq!(map.snapshot_keys(), want, "seed {seed}: snapshot diverges from model");
    map.check_invariants();

    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
    (acked_ops, inflight_ops)
}

/// The cross-process SIGKILL matrix: seeded kill points, zero lost acked
/// ops, every in-flight op detectably resolved, full model equivalence.
#[test]
fn restart_sigkill_recovers_across_processes() {
    let seeds: u64 =
        std::env::var("ISB_RESTART_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(20);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight) = run_one_seed(seed);
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "restart matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

/// Attach twice in a row without a crash: the second attach must be a
/// no-op scrub — nothing poisoned, nothing swept, contents identical.
#[test]
fn reattach_is_idempotent() {
    nvm::tid::set_tid(0);
    let dir = std::env::temp_dir().join(format!("isb_reattach_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = heap_path(&dir);
    {
        let (map, _) =
            RHashMap::<MappedNvm, false>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
        for k in 1..=300u64 {
            assert!(map.insert(0, k));
        }
        for k in (1..=300u64).step_by(2) {
            assert!(map.delete(0, k));
        }
    }
    let keys1 = {
        let (mut map, s) =
            RHashMap::<MappedNvm, false>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
        assert_eq!(s.heap.poisoned, 0, "clean detach left torn blocks");
        map.check_invariants();
        map.snapshot_keys()
    };
    let (mut map, s) =
        RHashMap::<MappedNvm, false>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
    assert_eq!(s.heap.poisoned, 0);
    assert_eq!(s.swept, 0, "second attach must have nothing left to sweep");
    map.check_invariants();
    assert_eq!(map.snapshot_keys(), keys1, "re-attach changed the contents");
    assert_eq!(keys1, (2..=300).step_by(2).collect::<Vec<u64>>());
    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
}
