//! True cross-process restart recovery: a child process hammers a mapped
//! `RHashMap` with a write-ahead intent/ack journal, the parent `SIGKILL`s
//! it mid-workload, re-attaches the heap **from the parent process**, and
//! verifies
//!
//! 1. every **acked** operation is reflected in the recovered map (and its
//!    acked response was correct at the time),
//! 2. the at-most-one **unacked** in-flight operation per process is
//!    *detectably* resolved: the attach-time Op-Recover replay either
//!    reports `Completed(res)` (its durable response — applied to the
//!    model) or `Restart` (it provably did not take effect — re-invoked),
//! 3. a full equivalence pass against a `std::collections::HashMap` model
//!    holds, plus the structural invariants.
//!
//! ## Journal protocol (per worker thread, one log file per pid)
//!
//! ```text
//! note_invocation(pid)          // CP_q := 0, persisted — the "system" half
//! write "S <seq> <op> <key>\n"  // intent record (one write syscall)
//! res = map.op(pid, key)
//! write "A <seq> <res>\n"       // ack record
//! ```
//!
//! `note_invocation` *before* the intent record is what makes every kill
//! point unambiguous: if the S record exists, `CP_q` was already cleared for
//! this operation, so a recovery decision of `Completed` can only refer to
//! *this* operation (never to the previous one), and `Restart` proves it
//! did not take effect. If the S record is missing, the operation never ran.
//!
//! The child is this same test binary re-executed with `--exact
//! restart_child_worker --include-ignored` and `ISB_RESTART_DIR` set.
//!
//! Seeds: `ISB_RESTART_SEEDS` (default 20) seeded kill points; every failure
//! message includes the seed. The mid-growth matrix sizes itself from
//! `ISB_RESTART_GROWTH_SEEDS` (default 12) instead, so smoke runs can
//! shrink the main matrix without starving the growth-window assert.

use isb::hashmap::RHashMap;
use isb::recovery::Recovered;
use isb::store::Store;
use nvm::MappedNvm;
use std::collections::{HashMap, VecDeque};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const HEAP_BYTES: usize = 16 * 1024 * 1024;
const WORKERS: usize = 3; // pids 1..=WORKERS, disjoint key ranges
const KEYS_PER_WORKER: u64 = 1000;

/// `RES_TRUE` of the result encoding (isb::engine::RES_TRUE).
const RES_TRUE: u64 = 2;

fn heap_path(dir: &Path) -> PathBuf {
    dir.join("heap.img")
}

fn log_path(dir: &Path, pid: usize) -> PathBuf {
    dir.join(format!("log_{pid}.txt"))
}

fn key_range(pid: usize) -> (u64, u64) {
    let lo = 1 + (pid as u64 - 1) * KEYS_PER_WORKER;
    (lo, lo + KEYS_PER_WORKER - 1)
}

/// Tiny deterministic PRNG (splitmix64) — keeps child and parent free of
/// any shared-seed coupling beyond the seed value itself.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Child mode
// ---------------------------------------------------------------------------

/// The child workload. Ignored in normal runs; the parent spawns this test
/// by name with `ISB_RESTART_DIR` set and kills it mid-loop.
#[test]
#[ignore = "child half of the restart harness; spawned by the parent test"]
fn restart_child_worker() {
    let Ok(dir) = std::env::var("ISB_RESTART_DIR") else { return };
    let dir = PathBuf::from(dir);
    let seed: u64 = std::env::var("ISB_RESTART_SEED").unwrap().parse().unwrap();

    nvm::tid::set_tid(0);
    // The growth leg shrinks the initial segment so the fill outgrows it.
    let heap_bytes: usize = std::env::var("ISB_RESTART_HEAP_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(HEAP_BYTES);
    let (map, _summary) =
        RHashMap::<MappedNvm, 0>::attach_sized(heap_path(&dir), SHARDS, heap_bytes)
            .expect("child attach");
    let map = Arc::new(map);
    // Signal readiness only once the heap is fully created.
    std::fs::write(dir.join("ready"), b"ok").unwrap();

    let handles: Vec<_> = (1..=WORKERS)
        .map(|pid| {
            let map = Arc::clone(&map);
            let dir = dir.clone();
            std::thread::spawn(move || {
                nvm::tid::set_tid(pid);
                let mut log =
                    OpenOptions::new().create(true).append(true).open(log_path(&dir, pid)).unwrap();
                let (lo, hi) = key_range(pid);
                let mut rng = seed.wrapping_mul(31).wrapping_add(pid as u64);
                let mut seq = 0u64;
                loop {
                    seq += 1;
                    let key = lo + splitmix(&mut rng) % (hi - lo + 1);
                    let op = match splitmix(&mut rng) % 10 {
                        0..=3 => 'i',
                        4..=6 => 'd',
                        _ => 'f',
                    };
                    // System half of the invocation BEFORE the intent record
                    // (see module docs).
                    map.note_invocation(pid);
                    log.write_all(format!("S {seq} {op} {key}\n").as_bytes()).unwrap();
                    let res = match op {
                        'i' => map.insert(pid, key),
                        'd' => map.delete(pid, key),
                        _ => map.find(pid, key),
                    };
                    log.write_all(format!("A {seq} {}\n", res as u8).as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join(); // unreachable: the loop runs until SIGKILL
    }
}

// ---------------------------------------------------------------------------
// Parent mode
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Insert,
    Delete,
    Find,
}

#[derive(Debug)]
struct LogEntry {
    seq: u64,
    op: Op,
    key: u64,
    ack: Option<bool>,
}

/// Parses one pid's journal. Incomplete trailing lines (the kill landed
/// mid-`write`) are ignored: a missing S means the op never ran; a missing
/// A means the op is in flight.
fn parse_log(path: &Path) -> Vec<LogEntry> {
    let Ok(raw) = std::fs::read(path) else { return Vec::new() };
    let text = String::from_utf8_lossy(&raw);
    let mut entries: Vec<LogEntry> = Vec::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final record
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("S") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let op = match it.next().unwrap() {
                    "i" => Op::Insert,
                    "d" => Op::Delete,
                    _ => Op::Find,
                };
                let key: u64 = it.next().unwrap().parse().unwrap();
                entries.push(LogEntry { seq, op, key, ack: None });
            }
            Some("A") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let res = it.next().unwrap() == "1";
                let last = entries.last_mut().expect("A without S");
                assert_eq!(last.seq, seq, "ack out of order in {path:?}");
                last.ack = Some(res);
            }
            _ => panic!("malformed journal line {line:?} in {path:?}"),
        }
    }
    entries
}

/// Applies `op` to the model; returns the expected (linearized) response.
fn model_apply(model: &mut HashMap<u64, u64>, op: Op, key: u64, seq: u64) -> bool {
    match op {
        Op::Insert => model.insert(key, seq).is_none(),
        Op::Delete => model.remove(&key).is_some(),
        Op::Find => model.contains_key(&key),
    }
}

fn run_one_seed(seed: u64) -> (u64, u64) {
    let kill_after = Duration::from_millis(30 + (seed * 37) % 170);
    let (acked, inflight, _segments) = run_one_seed_with(seed, HEAP_BYTES, kill_after);
    (acked, inflight)
}

/// One SIGKILL round: returns (acked ops verified, in-flight ops resolved,
/// heap segments after the parent's re-attach).
fn run_one_seed_with(seed: u64, heap_bytes: usize, kill_after: Duration) -> (u64, u64, usize) {
    let dir = std::env::temp_dir().join(format!("isb_restart_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Spawn the child: this test binary, child test only.
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "restart_child_worker", "--include-ignored", "--nocapture"])
        .env("ISB_RESTART_DIR", &dir)
        .env("ISB_RESTART_SEED", seed.to_string())
        .env("ISB_RESTART_HEAP_BYTES", heap_bytes.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    // Wait until the child created the heap, then let it run a seeded while.
    let t0 = Instant::now();
    while !dir.join("ready").exists() {
        assert!(t0.elapsed() < Duration::from_secs(60), "seed {seed}: child never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(kill_after);
    child.kill().expect("SIGKILL child"); // SIGKILL on unix: no cleanup runs
    child.wait().expect("reap child");

    // Re-attach FROM THIS PROCESS and recover.
    nvm::tid::set_tid(0);
    let (mut map, summary) =
        RHashMap::<MappedNvm, 0>::attach_sized(heap_path(&dir), SHARDS, heap_bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: parent attach failed: {e}"));

    let mut union: HashMap<u64, u64> = HashMap::new();
    let mut acked_ops = 0u64;
    let mut inflight_ops = 0u64;
    for pid in 1..=WORKERS {
        let entries = parse_log(&log_path(&dir, pid));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n = entries.len();
        for (i, e) in entries.iter().enumerate() {
            match e.ack {
                Some(res) => {
                    // 1. Acked ops: the logged response must match the
                    // sequential model of this pid's disjoint key range.
                    let want = model_apply(&mut model, e.op, e.key, e.seq);
                    assert_eq!(
                        res, want,
                        "seed {seed} pid {pid} seq {} ({:?} {}): acked response wrong",
                        e.seq, e.op, e.key
                    );
                    acked_ops += 1;
                }
                None => {
                    // 2. The in-flight op: must be the last record, and the
                    // recovery decision resolves it detectably.
                    assert_eq!(i, n - 1, "seed {seed} pid {pid}: unacked op not last");
                    inflight_ops += 1;
                    match summary.decision(pid) {
                        Recovered::Completed(res) => {
                            // The operation took effect; its durable response
                            // must match the model exactly.
                            let res = res == RES_TRUE;
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(
                                res, want,
                                "seed {seed} pid {pid} seq {} ({:?} {}): recovered response wrong",
                                e.seq, e.op, e.key
                            );
                        }
                        Recovered::Restart => {
                            // The operation did not take effect: re-invoke it
                            // with its original arguments (the paper's
                            // re-invocation semantics) and then apply it.
                            let res = match e.op {
                                Op::Insert => map.insert(pid, e.key),
                                Op::Delete => map.delete(pid, e.key),
                                Op::Find => map.find(pid, e.key),
                            };
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(
                                res, want,
                                "seed {seed} pid {pid} seq {} ({:?} {}): re-invoked response wrong",
                                e.seq, e.op, e.key
                            );
                        }
                    }
                }
            }
        }
        if entries.last().is_none_or(|e| e.ack.is_some()) {
            // No op in flight for this pid. A `Completed` decision can then
            // only name the last *published* (acked, mutating) operation —
            // cross-check its durable response against the journal.
            if let Recovered::Completed(res) = summary.decision(pid) {
                let last_mut = entries.iter().rev().find(|e| e.op != Op::Find);
                let logged = last_mut
                    .unwrap_or_else(|| {
                        panic!("seed {seed} pid {pid}: Completed with no mutating op logged")
                    })
                    .ack
                    .unwrap();
                assert_eq!(
                    res == RES_TRUE,
                    logged,
                    "seed {seed} pid {pid}: stale Completed response diverges from journal"
                );
            }
        }
        union.extend(model);
    }

    // 3. Full equivalence pass against the std::HashMap model.
    for pid in 1..=WORKERS {
        let (lo, hi) = key_range(pid);
        for k in lo..=hi {
            assert_eq!(
                map.find(0, k),
                union.contains_key(&k),
                "seed {seed}: equivalence diverges at key {k}"
            );
        }
    }
    let mut want: Vec<u64> = union.keys().copied().collect();
    want.sort_unstable();
    assert_eq!(map.snapshot_keys(), want, "seed {seed}: snapshot diverges from model");
    map.check_invariants();

    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
    (acked_ops, inflight_ops, summary.heap.segments)
}

/// The cross-process SIGKILL matrix: seeded kill points, zero lost acked
/// ops, every in-flight op detectably resolved, full model equivalence.
#[test]
fn restart_sigkill_recovers_across_processes() {
    let seeds: u64 =
        std::env::var("ISB_RESTART_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(20);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight) = run_one_seed(seed);
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "restart matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

/// The growth crash window: the same SIGKILL matrix over a heap whose
/// initial segment (64 KiB) is far smaller than the working set, so every
/// run with meaningful progress extends the file, stamps segment-directory
/// entries and publishes new segments while the workload hammers it — and
/// kill points are drawn tighter around that early growth phase. Zero lost
/// acked ops, every in-flight op detectably resolved, and the matrix as a
/// whole must actually have grown past segment 0 (single seeds may die
/// before the first growth; that window is the point).
#[test]
fn restart_sigkill_mid_growth_recovers() {
    // Deliberately NOT `ISB_RESTART_SEEDS`: the matrix-wide growth assert
    // below needs enough kill points that at least one lands after the
    // first segment growth, so a 1-seed smoke setting must not shrink it.
    let seeds: u64 =
        std::env::var("ISB_RESTART_GROWTH_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(12);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    let mut max_segments = 0;
    for seed in 0..seeds {
        // 1..=56 ms after readiness: clustered on the fill ramp, where the
        // allocation rate (and thus growth) is highest.
        let kill_after = Duration::from_millis(1 + (seed * 5) % 56);
        let (acked, inflight, segments) =
            run_one_seed_with(seed, nvm::mapped::MIN_HEAP_BYTES, kill_after);
        total_acked += acked;
        total_inflight += inflight;
        max_segments = max_segments.max(segments);
    }
    println!(
        "mid-growth matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved, max {max_segments} segments"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
    assert!(
        max_segments > 1,
        "no seed ever outgrew the 64 KiB initial segment — the growth window was not exercised"
    );
}

// ---------------------------------------------------------------------------
// Multi-structure store scenario: one heap, a map AND a queue, SIGKILL
// ---------------------------------------------------------------------------

const STORE_HEAP_BYTES: usize = 32 * 1024 * 1024;
const QUEUE_PID: usize = 3; // map workers are pids 1..=2

/// `RES_UNIT` / `RES_EMPTY` / `RES_VAL_BASE` of the result encoding.
const RES_UNIT: u64 = 3;
const RES_EMPTY: u64 = 4;
const RES_VAL_BASE: u64 = 16;

/// Child: two map workers plus one queue worker hammer ONE store heap with
/// per-pid journals until the parent kills them.
#[test]
#[ignore = "child half of the store restart harness; spawned by the parent test"]
fn store_restart_child_worker() {
    store_child_body::<0, 0>();
}

/// Same child workload over the PR-6 tuning arms: coalesced map (`ARM = 2`)
/// and link-persist queue (`ARM = 3`). A SIGKILL is the one crash the NVM
/// simulator cannot model — the mapped heap's surviving bytes are whatever
/// the kernel saw, so the elided/deferred flushes of these arms face a real
/// (if friendly: the page cache persists CPU stores without clflush) restart.
#[test]
#[ignore = "child half of the store restart harness; spawned by the parent test"]
fn store_restart_child_worker_coal_lp() {
    store_child_body::<2, 3>();
}

fn store_child_body<const MAP_ARM: u8, const QUEUE_ARM: u8>() {
    let Ok(dir) = std::env::var("ISB_RESTART_DIR") else { return };
    let dir = PathBuf::from(dir);
    let seed: u64 = std::env::var("ISB_RESTART_SEED").unwrap().parse().unwrap();

    nvm::tid::set_tid(0);
    let store = Arc::new(Store::open_sized(heap_path(&dir), STORE_HEAP_BYTES).expect("child open"));
    let map = store.hashmap::<MAP_ARM>("users", SHARDS).expect("users handle");
    let queue = store.queue::<QUEUE_ARM>("jobs").expect("jobs handle");
    std::fs::write(dir.join("ready"), b"ok").unwrap();

    let mut handles = Vec::new();
    for pid in 1..=2usize {
        let map = Arc::clone(&map);
        let dir = dir.clone();
        handles.push(std::thread::spawn(move || {
            nvm::tid::set_tid(pid);
            let mut log =
                OpenOptions::new().create(true).append(true).open(log_path(&dir, pid)).unwrap();
            let (lo, hi) = key_range(pid);
            let mut rng = seed.wrapping_mul(31).wrapping_add(pid as u64);
            let mut seq = 0u64;
            loop {
                seq += 1;
                let key = lo + splitmix(&mut rng) % (hi - lo + 1);
                let op = match splitmix(&mut rng) % 10 {
                    0..=3 => 'i',
                    4..=6 => 'd',
                    _ => 'f',
                };
                map.note_invocation(pid);
                log.write_all(format!("S {seq} {op} {key}\n").as_bytes()).unwrap();
                let res = match op {
                    'i' => map.insert(pid, key),
                    'd' => map.delete(pid, key),
                    _ => map.find(pid, key),
                };
                log.write_all(format!("A {seq} {}\n", res as u8).as_bytes()).unwrap();
            }
        }));
    }
    {
        let queue = Arc::clone(&queue);
        let dir = dir.clone();
        handles.push(std::thread::spawn(move || {
            nvm::tid::set_tid(QUEUE_PID);
            let mut log = OpenOptions::new()
                .create(true)
                .append(true)
                .open(log_path(&dir, QUEUE_PID))
                .unwrap();
            let mut rng = seed.wrapping_mul(131).wrapping_add(QUEUE_PID as u64);
            let mut seq = 0u64;
            loop {
                seq += 1;
                queue.note_invocation(QUEUE_PID);
                if splitmix(&mut rng).is_multiple_of(2) {
                    log.write_all(format!("S {seq} e {seq}\n").as_bytes()).unwrap();
                    queue.enqueue(QUEUE_PID, seq);
                    log.write_all(format!("A {seq} 1\n").as_bytes()).unwrap();
                } else {
                    log.write_all(format!("S {seq} d 0\n").as_bytes()).unwrap();
                    let got = queue.dequeue(QUEUE_PID);
                    let enc = got.map_or("E".to_string(), |v| v.to_string());
                    log.write_all(format!("A {seq} {enc}\n").as_bytes()).unwrap();
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join(); // unreachable: the loop runs until SIGKILL
    }
}

/// One queue journal record.
#[derive(Debug)]
struct QLogEntry {
    enqueue: bool,
    val: u64,
    /// `None` = in flight; `Some(None)` = acked Empty; `Some(Some(v))`.
    ack: Option<Option<u64>>,
}

fn parse_queue_log(path: &Path) -> Vec<QLogEntry> {
    let Ok(raw) = std::fs::read(path) else { return Vec::new() };
    let text = String::from_utf8_lossy(&raw);
    let mut entries: Vec<QLogEntry> = Vec::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final record
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("S") => {
                let _seq: u64 = it.next().unwrap().parse().unwrap();
                let enqueue = it.next().unwrap() == "e";
                let val: u64 = it.next().unwrap().parse().unwrap();
                entries.push(QLogEntry { enqueue, val, ack: None });
            }
            Some("A") => {
                let _seq: u64 = it.next().unwrap().parse().unwrap();
                let tok = it.next().unwrap();
                let last = entries.last_mut().expect("A without S");
                last.ack = Some(if last.enqueue {
                    Some(last.val)
                } else if tok == "E" {
                    None
                } else {
                    Some(tok.parse().unwrap())
                });
            }
            _ => panic!("malformed queue journal line {line:?}"),
        }
    }
    entries
}

fn run_one_store_seed(seed: u64) -> (u64, u64) {
    run_one_store_seed_arm::<0, 0>(seed, "store_restart_child_worker")
}

fn run_one_store_seed_arm<const MAP_ARM: u8, const QUEUE_ARM: u8>(
    seed: u64,
    child_test: &str,
) -> (u64, u64) {
    let dir = std::env::temp_dir()
        .join(format!("isb_store_restart_m{MAP_ARM}q{QUEUE_ARM}_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", child_test, "--include-ignored", "--nocapture"])
        .env("ISB_RESTART_DIR", &dir)
        .env("ISB_RESTART_SEED", seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");
    let t0 = Instant::now();
    while !dir.join("ready").exists() {
        assert!(t0.elapsed() < Duration::from_secs(60), "seed {seed}: child never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(30 + (seed * 41) % 170));
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    // Re-open the WHOLE store from this process: one shared replay resolves
    // every structure's pending operation.
    nvm::tid::set_tid(0);
    let store = Store::open_sized(heap_path(&dir), STORE_HEAP_BYTES)
        .unwrap_or_else(|e| panic!("seed {seed}: parent store open failed: {e}"));
    let summary = store.summary();
    let map = store.hashmap::<MAP_ARM>("users", SHARDS).expect("users handle");
    let queue = store.queue::<QUEUE_ARM>("jobs").expect("jobs handle");

    let mut acked = 0u64;
    let mut inflight = 0u64;

    // Map workers: identical acked/in-flight verification as the
    // single-structure matrix.
    let mut union: HashMap<u64, u64> = HashMap::new();
    for pid in 1..=2usize {
        let entries = parse_log(&log_path(&dir, pid));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n = entries.len();
        for (i, e) in entries.iter().enumerate() {
            match e.ack {
                Some(res) => {
                    let want = model_apply(&mut model, e.op, e.key, e.seq);
                    assert_eq!(res, want, "seed {seed} pid {pid} seq {}: acked map op", e.seq);
                    acked += 1;
                }
                None => {
                    assert_eq!(i, n - 1, "seed {seed} pid {pid}: unacked op not last");
                    inflight += 1;
                    match summary.decision(pid) {
                        Recovered::Completed(res) => {
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(res == RES_TRUE, want, "seed {seed} pid {pid}: recovered");
                        }
                        Recovered::Restart => {
                            let res = match e.op {
                                Op::Insert => map.insert(pid, e.key),
                                Op::Delete => map.delete(pid, e.key),
                                Op::Find => map.find(pid, e.key),
                            };
                            let want = model_apply(&mut model, e.op, e.key, e.seq);
                            assert_eq!(res, want, "seed {seed} pid {pid}: re-invoked");
                        }
                    }
                }
            }
        }
        union.extend(model);
    }
    for pid in 1..=2usize {
        let (lo, hi) = key_range(pid);
        for k in lo..=hi {
            assert_eq!(
                map.find(0, k),
                union.contains_key(&k),
                "seed {seed}: map equivalence diverges at key {k}"
            );
        }
    }

    // Queue worker: FIFO model replay, in-flight op resolved detectably.
    let entries = parse_queue_log(&log_path(&dir, QUEUE_PID));
    let mut model: VecDeque<u64> = VecDeque::new();
    let n = entries.len();
    for (i, e) in entries.iter().enumerate() {
        match &e.ack {
            Some(res) => {
                let want = if e.enqueue {
                    model.push_back(e.val);
                    Some(e.val)
                } else {
                    model.pop_front()
                };
                assert_eq!(*res, want, "seed {seed} queue entry {i}: acked response wrong");
                acked += 1;
            }
            None => {
                assert_eq!(i, n - 1, "seed {seed}: unacked queue op not last");
                inflight += 1;
                match summary.decision(QUEUE_PID) {
                    Recovered::Completed(res) if e.enqueue => {
                        assert_eq!(res, RES_UNIT, "seed {seed}: enqueue response");
                        model.push_back(e.val);
                    }
                    Recovered::Completed(res) => {
                        let want = model.pop_front();
                        let got = if res == RES_EMPTY { None } else { Some(res - RES_VAL_BASE) };
                        assert_eq!(got, want, "seed {seed}: recovered dequeue response");
                    }
                    Recovered::Restart if e.enqueue => {
                        queue.enqueue(QUEUE_PID, e.val);
                        model.push_back(e.val);
                    }
                    Recovered::Restart => {
                        let got = queue.dequeue(QUEUE_PID);
                        assert_eq!(got, model.pop_front(), "seed {seed}: re-invoked dequeue");
                    }
                }
            }
        }
    }
    // Drain: the recovered queue must match the model exactly, in order.
    while let Some(want) = model.pop_front() {
        assert_eq!(queue.dequeue(0), Some(want), "seed {seed}: queue contents diverge");
    }
    assert_eq!(queue.dequeue(0), None, "seed {seed}: queue longer than model");

    drop((map, queue, store));
    let _ = std::fs::remove_dir_all(&dir);
    (acked, inflight)
}

/// The multi-structure store matrix: SIGKILL a child mutating a map AND a
/// queue in ONE heap at seeded points; zero lost acked ops, every in-flight
/// op detectably resolved per structure, model equivalence for both.
#[test]
fn store_restart_sigkill_recovers_across_processes() {
    let seeds: u64 =
        std::env::var("ISB_RESTART_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight) = run_one_store_seed(seed);
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "store restart matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

/// The PR-6 tuning-arm leg of the store matrix: SIGKILL a child mutating a
/// *coalesced* map (`ARM = 2`) and a *link-persist* queue (`ARM = 3`) in one
/// heap; same zero-lost-acked / detectable-in-flight / model-equivalence
/// bars. The arms ride in the catalog's cfg word, so a parent attaching with
/// the wrong arm would be rejected before replay.
#[test]
fn store_restart_sigkill_recovers_coalesced_arms() {
    let seeds: u64 =
        std::env::var("ISB_RESTART_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight) =
            run_one_store_seed_arm::<2, 3>(seed, "store_restart_child_worker_coal_lp");
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "coal/LP store restart matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

/// Attach twice in a row without a crash: the second attach must be a
/// no-op scrub — nothing poisoned, nothing swept, contents identical.
#[test]
fn reattach_is_idempotent() {
    nvm::tid::set_tid(0);
    let dir = std::env::temp_dir().join(format!("isb_reattach_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = heap_path(&dir);
    {
        let (map, _) = RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
        for k in 1..=300u64 {
            assert!(map.insert(0, k));
        }
        for k in (1..=300u64).step_by(2) {
            assert!(map.delete(0, k));
        }
    }
    let keys1 = {
        let (mut map, s) =
            RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
        assert_eq!(s.heap.poisoned, 0, "clean detach left torn blocks");
        map.check_invariants();
        map.snapshot_keys()
    };
    let (mut map, s) = RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, HEAP_BYTES).unwrap();
    assert_eq!(s.heap.poisoned, 0);
    assert_eq!(s.swept, 0, "second attach must have nothing left to sweep");
    map.check_invariants();
    assert_eq!(map.snapshot_keys(), keys1, "re-attach changed the contents");
    assert_eq!(keys1, (2..=300).step_by(2).collect::<Vec<u64>>());
    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Five-kinds scenario: every structure kind in ONE store, one worker, SIGKILL
// ---------------------------------------------------------------------------

const FIVE_PID: usize = 1;
const FIVE_MAP_KEYS: u64 = 100;
const FIVE_SET_KEYS: u64 = 48;

/// Child: a single worker cycles random operations across a map, queue,
/// list, BST and stack hosted by ONE store heap, journaling every op.
#[test]
#[ignore = "child half of the five-kinds restart harness; spawned by the parent test"]
fn five_kinds_child_worker() {
    let Ok(dir) = std::env::var("ISB_RESTART_DIR") else { return };
    let dir = PathBuf::from(dir);
    let seed: u64 = std::env::var("ISB_RESTART_SEED").unwrap().parse().unwrap();

    nvm::tid::set_tid(FIVE_PID);
    let store = Store::open_sized(heap_path(&dir), STORE_HEAP_BYTES).expect("child open");
    let m = store.hashmap::<0>("m", 4).unwrap();
    let q = store.queue::<0>("q").unwrap();
    let l = store.list::<1>("l").unwrap();
    let t = store.bst::<0>("t").unwrap();
    let s = store.stack("s").unwrap();
    std::fs::write(dir.join("ready"), b"ok").unwrap();

    let mut log =
        OpenOptions::new().create(true).append(true).open(log_path(&dir, FIVE_PID)).unwrap();
    let mut rng = seed.wrapping_mul(77).wrapping_add(5);
    let mut seq = 0u64;
    loop {
        seq += 1;
        let r = splitmix(&mut rng);
        let (st, op, key) = match r % 5 {
            0 => ('m', ['i', 'd', 'f'][(r >> 8) as usize % 3], 1 + (r >> 16) % FIVE_MAP_KEYS),
            1 => ('q', ['e', 'd'][(r >> 8) as usize % 2], seq),
            2 => ('l', ['i', 'd', 'f'][(r >> 8) as usize % 3], 1 + (r >> 16) % FIVE_SET_KEYS),
            3 => ('t', ['i', 'd', 'f'][(r >> 8) as usize % 3], 1 + (r >> 16) % FIVE_SET_KEYS),
            _ => ('s', ['u', 'o'][(r >> 8) as usize % 2], seq),
        };
        // System half of the invocation BEFORE the intent record.
        m.note_invocation(FIVE_PID);
        log.write_all(format!("S {seq} {st} {op} {key}\n").as_bytes()).unwrap();
        let ack = match (st, op) {
            ('m', 'i') => (m.insert(FIVE_PID, key) as u8).to_string(),
            ('m', 'd') => (m.delete(FIVE_PID, key) as u8).to_string(),
            ('m', _) => (m.find(FIVE_PID, key) as u8).to_string(),
            ('q', 'e') => {
                q.enqueue(FIVE_PID, key);
                "1".to_string()
            }
            ('q', _) => q.dequeue(FIVE_PID).map_or("E".to_string(), |v| v.to_string()),
            ('l', 'i') => (l.insert(FIVE_PID, key) as u8).to_string(),
            ('l', 'd') => (l.delete(FIVE_PID, key) as u8).to_string(),
            ('l', _) => (l.find(FIVE_PID, key) as u8).to_string(),
            ('t', 'i') => (t.insert(FIVE_PID, key) as u8).to_string(),
            ('t', 'd') => (t.delete(FIVE_PID, key) as u8).to_string(),
            ('t', _) => (t.find(FIVE_PID, key) as u8).to_string(),
            ('s', 'u') => {
                s.push(FIVE_PID, key);
                "1".to_string()
            }
            _ => s.pop(FIVE_PID).map_or("E".to_string(), |v| v.to_string()),
        };
        log.write_all(format!("A {seq} {ack}\n").as_bytes()).unwrap();
    }
}

/// Sequential model of the five structures.
#[derive(Default)]
struct FiveModel {
    map: std::collections::HashSet<u64>,
    queue: VecDeque<u64>,
    list: std::collections::HashSet<u64>,
    bst: std::collections::HashSet<u64>,
    stack: Vec<u64>,
}

impl FiveModel {
    /// Applies one journaled op; returns the expected ack token.
    fn apply(&mut self, st: char, op: char, key: u64) -> String {
        let set = |s: &mut std::collections::HashSet<u64>| match op {
            'i' => (s.insert(key) as u8).to_string(),
            'd' => (s.remove(&key) as u8).to_string(),
            _ => (s.contains(&key) as u8).to_string(),
        };
        match (st, op) {
            ('m', _) => set(&mut self.map),
            ('l', _) => set(&mut self.list),
            ('t', _) => set(&mut self.bst),
            ('q', 'e') => {
                self.queue.push_back(key);
                "1".to_string()
            }
            ('q', _) => self.queue.pop_front().map_or("E".to_string(), |v| v.to_string()),
            ('s', 'u') => {
                self.stack.push(key);
                "1".to_string()
            }
            _ => self.stack.pop().map_or("E".to_string(), |v| v.to_string()),
        }
    }
}

fn run_one_five_kinds_seed(seed: u64) -> (u64, u64) {
    let dir = std::env::temp_dir().join(format!("isb_five_restart_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "five_kinds_child_worker", "--include-ignored", "--nocapture"])
        .env("ISB_RESTART_DIR", &dir)
        .env("ISB_RESTART_SEED", seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");
    let t0 = Instant::now();
    while !dir.join("ready").exists() {
        assert!(t0.elapsed() < Duration::from_secs(60), "seed {seed}: child never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(25 + (seed * 53) % 160));
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    nvm::tid::set_tid(0);
    let store = Store::open_sized(heap_path(&dir), STORE_HEAP_BYTES)
        .unwrap_or_else(|e| panic!("seed {seed}: parent store open failed: {e}"));
    let m = store.hashmap::<0>("m", 4).unwrap();
    let q = store.queue::<0>("q").unwrap();
    let l = store.list::<1>("l").unwrap();
    let t = store.bst::<0>("t").unwrap();
    let s = store.stack("s").unwrap();

    // Replay the journal against the sequential model.
    let raw = std::fs::read(log_path(&dir, FIVE_PID)).unwrap_or_default();
    let text = String::from_utf8_lossy(&raw);
    let mut model = FiveModel::default();
    let mut acked = 0u64;
    let mut pending: Option<(char, char, u64)> = None;
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final record
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("S") => {
                assert!(pending.is_none(), "seed {seed}: two ops in flight");
                let _seq: u64 = it.next().unwrap().parse().unwrap();
                let st = it.next().unwrap().chars().next().unwrap();
                let op = it.next().unwrap().chars().next().unwrap();
                let key: u64 = it.next().unwrap().parse().unwrap();
                pending = Some((st, op, key));
            }
            Some("A") => {
                let _seq: u64 = it.next().unwrap().parse().unwrap();
                let got = it.next().unwrap();
                let (st, op, key) = pending.take().expect("A without S");
                let want = model.apply(st, op, key);
                assert_eq!(got, want, "seed {seed}: acked {st}/{op}/{key} response wrong");
                acked += 1;
            }
            _ => panic!("malformed journal line {line:?}"),
        }
    }
    // Resolve the at-most-one in-flight op through the store-wide decision.
    let mut inflight = 0u64;
    if let Some((st, op, key)) = pending {
        inflight = 1;
        match store.summary().decision(FIVE_PID) {
            Recovered::Completed(res) => {
                // The op took effect: its durable response must match the
                // model's expected response for this structure kind.
                let want = model.apply(st, op, key);
                let got = match (st, op) {
                    ('q', 'e') | ('s', 'u') => {
                        assert_eq!(res, RES_UNIT, "seed {seed}: ack-op response");
                        "1".to_string()
                    }
                    ('q', _) | ('s', _) => {
                        if res == RES_EMPTY {
                            "E".to_string()
                        } else {
                            (res - RES_VAL_BASE).to_string()
                        }
                    }
                    _ => ((res == RES_TRUE) as u8).to_string(),
                };
                assert_eq!(got, want, "seed {seed}: recovered {st}/{op}/{key} response wrong");
            }
            Recovered::Restart => {
                // Re-invoke with the original arguments, then apply.
                let got = match (st, op) {
                    ('m', 'i') => (m.insert(FIVE_PID, key) as u8).to_string(),
                    ('m', 'd') => (m.delete(FIVE_PID, key) as u8).to_string(),
                    ('m', _) => (m.find(FIVE_PID, key) as u8).to_string(),
                    ('q', 'e') => {
                        q.enqueue(FIVE_PID, key);
                        "1".to_string()
                    }
                    ('q', _) => q.dequeue(FIVE_PID).map_or("E".to_string(), |v| v.to_string()),
                    ('l', 'i') => (l.insert(FIVE_PID, key) as u8).to_string(),
                    ('l', 'd') => (l.delete(FIVE_PID, key) as u8).to_string(),
                    ('l', _) => (l.find(FIVE_PID, key) as u8).to_string(),
                    ('t', 'i') => (t.insert(FIVE_PID, key) as u8).to_string(),
                    ('t', 'd') => (t.delete(FIVE_PID, key) as u8).to_string(),
                    ('t', _) => (t.find(FIVE_PID, key) as u8).to_string(),
                    ('s', 'u') => {
                        s.push(FIVE_PID, key);
                        "1".to_string()
                    }
                    _ => s.pop(FIVE_PID).map_or("E".to_string(), |v| v.to_string()),
                };
                let want = model.apply(st, op, key);
                assert_eq!(got, want, "seed {seed}: re-invoked {st}/{op}/{key} response wrong");
            }
        }
    }

    // Full equivalence per structure.
    for k in 1..=FIVE_MAP_KEYS {
        assert_eq!(m.find(0, k), model.map.contains(&k), "seed {seed}: map diverges at {k}");
    }
    for k in 1..=FIVE_SET_KEYS {
        assert_eq!(l.find(0, k), model.list.contains(&k), "seed {seed}: list diverges at {k}");
        assert_eq!(t.find(0, k), model.bst.contains(&k), "seed {seed}: bst diverges at {k}");
    }
    while let Some(want) = model.queue.pop_front() {
        assert_eq!(q.dequeue(0), Some(want), "seed {seed}: queue diverges");
    }
    assert_eq!(q.dequeue(0), None, "seed {seed}: queue longer than model");
    while let Some(want) = model.stack.pop() {
        assert_eq!(s.pop(0), Some(want), "seed {seed}: stack diverges");
    }
    assert_eq!(s.pop(0), None, "seed {seed}: stack longer than model");

    drop((m, q, l, t, s, store));
    let _ = std::fs::remove_dir_all(&dir);
    (acked, inflight)
}

// ---------------------------------------------------------------------------
// Kill-one-of-N: N live processes share ONE heap; a SIGKILLed peer is
// recovered ONLINE by a survivor while service continues
// ---------------------------------------------------------------------------

const SHARED_PROCS: usize = 3;
const SHARED_HEAP_BYTES: usize = 32 * 1024 * 1024;
/// Queue values are `(idx + 1) * QVAL_STRIDE + seq`: globally unique and
/// attributable to their producer for the per-producer FIFO check.
const QVAL_STRIDE: u64 = 10_000_000;

fn shared_log_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("slog_{idx}.txt"))
}

/// Child: joins (or creates) the SHARED store heap, spawns a healer thread
/// that recovers dead peers under a lease (holding it `ISB_RECOVERY_HOLD_MS`
/// first, so the parent can observe service during recovery — and kill the
/// recoverer mid-lease), and hammers the shared map + queue with a journal
/// until the parent writes the stop file.
#[test]
#[ignore = "child half of the shared-heap kill matrix; spawned by the parent test"]
fn shared_child_worker() {
    let Ok(dir) = std::env::var("ISB_RESTART_DIR") else { return };
    let dir = PathBuf::from(dir);
    let idx: usize = std::env::var("ISB_CHILD_IDX").unwrap().parse().unwrap();
    let seed: u64 = std::env::var("ISB_RESTART_SEED").unwrap().parse().unwrap();
    let hold = Duration::from_millis(
        std::env::var("ISB_RECOVERY_HOLD_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(0),
    );

    nvm::tid::set_tid(0);
    let store = Arc::new(
        Store::open_shared_sized(heap_path(&dir), SHARED_HEAP_BYTES).expect("child shared open"),
    );
    let slot = store.heap().my_participant().expect("participant slot");
    let band = nvm::mapped::MappedHeap::tid_band(slot);
    // Every thread of this process registers a tid inside its band.
    nvm::tid::set_tid(band.start);
    let map = store.hashmap::<0>("users", SHARDS).expect("users handle");
    let queue = store.queue::<0>("jobs").expect("jobs handle");
    std::fs::write(dir.join(format!("ready_{idx}")), format!("{} {slot}", std::process::id()))
        .unwrap();

    let stop = dir.join("stop");
    let healer = {
        let store = Arc::clone(&store);
        let dir = dir.clone();
        let stop = stop.clone();
        let healer_tid = band.start + 1;
        std::thread::spawn(move || {
            nvm::tid::set_tid(healer_tid);
            while !stop.exists() {
                for s in store.dead_peers() {
                    if store.claim_recovery(s) {
                        // Lease held: the parent observes this marker, then
                        // asserts survivors (this process included) keep
                        // acking operations before rec_done appears.
                        std::fs::write(dir.join(format!("rec_start_{idx}_{s}")), b"").unwrap();
                        std::thread::sleep(hold);
                        if let Ok(Some(decisions)) = store.recover_peer(s) {
                            let body: String = decisions
                                .iter()
                                .map(|(pid, d)| match d {
                                    Recovered::Completed(r) => format!("{pid} C {r}\n"),
                                    Recovered::Restart => format!("{pid} R\n"),
                                })
                                .collect();
                            std::fs::write(dir.join(format!("rec_done_{idx}_{s}")), body).unwrap();
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let mut log =
        OpenOptions::new().create(true).append(true).open(shared_log_path(&dir, idx)).unwrap();
    let (lo, hi) = key_range(idx + 1); // disjoint 1000-key range per child
    let mut rng = seed.wrapping_mul(97).wrapping_add(idx as u64 + 1);
    let mut seq = 0u64;
    let t = band.start;
    // Stop is checked BEFORE each op: a graceful exit never leaves an
    // in-flight record, so unacked journal tails only come from SIGKILLs.
    while !stop.exists() {
        seq += 1;
        let r = splitmix(&mut rng);
        // System half of the invocation BEFORE the intent record.
        map.note_invocation(t);
        if r.is_multiple_of(3) {
            if (r >> 8).is_multiple_of(2) {
                let val = (idx as u64 + 1) * QVAL_STRIDE + seq;
                log.write_all(format!("S {seq} q e {val}\n").as_bytes()).unwrap();
                queue.enqueue(t, val);
                log.write_all(format!("A {seq} 1\n").as_bytes()).unwrap();
            } else {
                log.write_all(format!("S {seq} q d 0\n").as_bytes()).unwrap();
                let enc = queue.dequeue(t).map_or("E".to_string(), |v| v.to_string());
                log.write_all(format!("A {seq} {enc}\n").as_bytes()).unwrap();
            }
        } else {
            let key = lo + splitmix(&mut rng) % (hi - lo + 1);
            let op = match (r >> 16) % 10 {
                0..=3 => 'i',
                4..=6 => 'd',
                _ => 'f',
            };
            log.write_all(format!("S {seq} m {op} {key}\n").as_bytes()).unwrap();
            let res = match op {
                'i' => map.insert(t, key),
                'd' => map.delete(t, key),
                _ => map.find(t, key),
            };
            log.write_all(format!("A {seq} {}\n", res as u8).as_bytes()).unwrap();
        }
    }
    let _ = healer.join();
}

/// One parsed record of the shared-heap journal.
#[derive(Debug)]
struct SharedEntry {
    seq: u64,
    /// 'i'/'d'/'f' map ops, 'e'/'x' queue enqueue/dequeue.
    op: char,
    /// Map key or enqueue value (0 for dequeues).
    arg: u64,
    /// Ack token as written (`"0"`/`"1"`, a value, or `"E"`); `None` = in flight.
    ack: Option<String>,
}

fn parse_shared_log(path: &Path) -> Vec<SharedEntry> {
    let Ok(raw) = std::fs::read(path) else { return Vec::new() };
    let text = String::from_utf8_lossy(&raw);
    let mut entries: Vec<SharedEntry> = Vec::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break; // torn final record
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("S") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let st = it.next().unwrap();
                let op = it.next().unwrap().chars().next().unwrap();
                let arg: u64 = it.next().unwrap().parse().unwrap();
                let op = if st == "q" {
                    if op == 'e' {
                        'e'
                    } else {
                        'x'
                    }
                } else {
                    op
                };
                entries.push(SharedEntry { seq, op, arg, ack: None });
            }
            Some("A") => {
                let seq: u64 = it.next().unwrap().parse().unwrap();
                let tok = it.next().unwrap().to_string();
                let last = entries.last_mut().expect("A without S");
                assert_eq!(last.seq, seq, "ack out of order in {path:?}");
                last.ack = Some(tok);
            }
            _ => panic!("malformed shared journal line {line:?} in {path:?}"),
        }
    }
    entries
}

/// Reads the survivor-journaled recovery decision for `tid` out of a
/// `rec_done_<idx>_<slot>` marker.
fn marker_decision(dir: &Path, slot: usize, tid: usize) -> Recovered {
    for idx in 0..SHARED_PROCS {
        let p = dir.join(format!("rec_done_{idx}_{slot}"));
        let Ok(body) = std::fs::read_to_string(&p) else { continue };
        for line in body.lines() {
            let mut it = line.split_whitespace();
            let pid: usize = it.next().unwrap().parse().unwrap();
            if pid != tid {
                continue;
            }
            return match it.next().unwrap() {
                "C" => Recovered::Completed(it.next().unwrap().parse().unwrap()),
                _ => Recovered::Restart,
            };
        }
    }
    panic!("no rec_done marker covers slot {slot} tid {tid}");
}

fn wait_for(seed: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(60), "seed {seed}: timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One kill-one-of-N round. `second_kill` additionally SIGKILLs the
/// *recoverer* mid-lease, so the last survivor must steal the lease and
/// recover BOTH dead peers. Returns (acked ops verified, in-flight ops
/// resolved by survivors, progress-during-recovery observed).
fn run_one_shared_seed(seed: u64, second_kill: bool) -> (u64, u64, bool) {
    let dir = std::env::temp_dir().join(format!(
        "isb_shared_restart_{}_{}_{seed}",
        if second_kill { "kill2" } else { "kill1" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let hold_ms: u64 = if second_kill { 400 } else { 250 };
    let mut children: Vec<Option<std::process::Child>> = (0..SHARED_PROCS)
        .map(|idx| {
            Some(
                std::process::Command::new(std::env::current_exe().unwrap())
                    .args(["--exact", "shared_child_worker", "--include-ignored", "--nocapture"])
                    .env("ISB_RESTART_DIR", &dir)
                    .env("ISB_CHILD_IDX", idx.to_string())
                    .env("ISB_RESTART_SEED", seed.to_string())
                    .env("ISB_RECOVERY_HOLD_MS", hold_ms.to_string())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn shared child"),
            )
        })
        .collect();

    // idx -> participant slot, from the ready files.
    let mut slots = [usize::MAX; SHARED_PROCS];
    for (idx, slot) in slots.iter_mut().enumerate() {
        let ready = dir.join(format!("ready_{idx}"));
        wait_for(seed, "child readiness", || ready.exists());
        *slot = std::fs::read_to_string(&ready)
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
    }
    assert_eq!(
        {
            let mut s = slots.to_vec();
            s.sort_unstable();
            s.dedup();
            s.len()
        },
        SHARED_PROCS,
        "seed {seed}: participant slots must be distinct"
    );

    std::thread::sleep(Duration::from_millis(30 + (seed * 37) % 170));
    let victim = (seed as usize) % SHARED_PROCS;
    let mut killed: Vec<usize> = vec![victim];
    let mut c = children[victim].take().unwrap();
    c.kill().expect("SIGKILL victim");
    c.wait().expect("reap victim");

    let rec_start_for = |slot: usize| -> Option<usize> {
        (0..SHARED_PROCS).find(|idx| dir.join(format!("rec_start_{idx}_{slot}")).exists())
    };
    wait_for(seed, "a survivor claiming the victim's recovery lease", || {
        rec_start_for(slots[victim]).is_some()
    });
    let recoverer = rec_start_for(slots[victim]).unwrap();
    assert_ne!(recoverer, victim, "seed {seed}: the victim cannot recover itself");

    if second_kill {
        // Kill the recoverer while it holds the lease; the last survivor
        // must detect it, STEAL the lease, and recover both dead peers.
        let mut c = children[recoverer].take().unwrap();
        c.kill().expect("SIGKILL recoverer");
        c.wait().expect("reap recoverer");
        killed.push(recoverer);
    }

    // Progress DURING recovery: while some recovery lease is claimed but not
    // finished, every remaining survivor must keep acking operations.
    let live: Vec<usize> = (0..SHARED_PROCS).filter(|i| !killed.contains(i)).collect();
    let all_done = |killed: &[usize]| {
        killed.iter().all(|&k| {
            (0..SHARED_PROCS).any(|idx| dir.join(format!("rec_done_{idx}_{}", slots[k])).exists())
        })
    };
    let sizes: Vec<u64> = live
        .iter()
        .map(|&i| std::fs::metadata(shared_log_path(&dir, i)).map_or(0, |m| m.len()))
        .collect();
    let recovery_in_flight = !all_done(&killed);
    std::thread::sleep(Duration::from_millis(120));
    let mut progress_observed = false;
    if recovery_in_flight {
        for (&i, &before) in live.iter().zip(&sizes) {
            let after = std::fs::metadata(shared_log_path(&dir, i)).map_or(0, |m| m.len());
            assert!(after > before, "seed {seed}: survivor {i} stalled during a peer's recovery");
        }
        progress_observed = true;
    }

    wait_for(seed, "all dead peers recovered by survivors", || all_done(&killed));
    std::fs::write(dir.join("stop"), b"").unwrap();
    for idx in live {
        let mut c = children[idx].take().unwrap();
        let status = c.wait().expect("reap survivor");
        assert!(status.success(), "seed {seed}: survivor {idx} exited dirty: {status:?}");
    }

    // Final full attach FROM THIS PROCESS (no live participants remain) and
    // journal verification.
    nvm::tid::set_tid(0);
    let store = Store::open_shared_sized(heap_path(&dir), SHARED_HEAP_BYTES)
        .unwrap_or_else(|e| panic!("seed {seed}: parent shared open failed: {e}"));
    assert!(!store.summary().heap.joined, "seed {seed}: parent must be the initial attacher");
    let pslot = store.heap().my_participant().unwrap();
    let t0 = nvm::mapped::MappedHeap::tid_band(pslot).start;
    nvm::tid::set_tid(t0);
    let map = store.hashmap::<0>("users", SHARDS).expect("users handle");
    let queue = store.queue::<0>("jobs").expect("jobs handle");

    let mut acked = 0u64;
    let mut inflight = 0u64;
    // Queue bookkeeping across ALL journals: enqueue order per producer,
    // globally-observed dequeues, values proven NOT enqueued (Restart).
    let mut enq_order: HashMap<u64, usize> = HashMap::new(); // val -> per-producer index
    let mut enq_count = [0usize; SHARED_PROCS];
    let mut dequeued: Vec<u64> = Vec::new();
    let mut forbidden: Vec<u64> = Vec::new();

    for idx in 0..SHARED_PROCS {
        let entries = parse_shared_log(&shared_log_path(&dir, idx));
        let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let n = entries.len();
        for (i, e) in entries.iter().enumerate() {
            match &e.ack {
                Some(tok) => {
                    acked += 1;
                    match e.op {
                        'i' => assert_eq!(
                            tok == "1",
                            model.insert(e.arg),
                            "seed {seed} child {idx} seq {}: acked insert response",
                            e.seq
                        ),
                        'd' => assert_eq!(
                            tok == "1",
                            model.remove(&e.arg),
                            "seed {seed} child {idx} seq {}: acked delete response",
                            e.seq
                        ),
                        'f' => assert_eq!(
                            tok == "1",
                            model.contains(&e.arg),
                            "seed {seed} child {idx} seq {}: acked find response",
                            e.seq
                        ),
                        'e' => {
                            enq_order.insert(e.arg, enq_count[idx]);
                            enq_count[idx] += 1;
                        }
                        _ => {
                            if tok != "E" {
                                dequeued.push(tok.parse().unwrap());
                            }
                        }
                    }
                }
                None => {
                    // In-flight op: only a SIGKILLed child can leave one, it
                    // must be the journal tail, and a survivor must have
                    // resolved it detectably (the rec_done marker).
                    assert!(
                        killed.contains(&idx),
                        "seed {seed}: survivor {idx} left an in-flight op"
                    );
                    assert_eq!(i, n - 1, "seed {seed} child {idx}: unacked op not last");
                    inflight += 1;
                    let band = nvm::mapped::MappedHeap::tid_band(slots[idx]);
                    let decision = marker_decision(&dir, slots[idx], band.start);
                    match (decision, e.op) {
                        (Recovered::Completed(r), 'i') => assert_eq!(
                            r == RES_TRUE,
                            model.insert(e.arg),
                            "seed {seed} child {idx}: recovered insert response"
                        ),
                        (Recovered::Completed(r), 'd') => assert_eq!(
                            r == RES_TRUE,
                            model.remove(&e.arg),
                            "seed {seed} child {idx}: recovered delete response"
                        ),
                        (Recovered::Completed(r), 'e') => {
                            assert_eq!(r, RES_UNIT, "seed {seed}: recovered enqueue response");
                            enq_order.insert(e.arg, enq_count[idx]);
                            enq_count[idx] += 1;
                        }
                        (Recovered::Completed(r), 'x') => {
                            if r != RES_EMPTY {
                                dequeued.push(r - RES_VAL_BASE);
                            }
                        }
                        (Recovered::Completed(_), 'f') => {
                            panic!("seed {seed}: a read-only find cannot recover Completed")
                        }
                        (Recovered::Restart, 'e') => forbidden.push(e.arg),
                        (Recovered::Restart, _) => {} // provably took no effect
                        (Recovered::Completed(_), op) => {
                            panic!("seed {seed}: unexpected op {op:?}")
                        }
                    }
                }
            }
        }
        // Map equivalence over this child's disjoint key range — EXACT, with
        // no in-flight slack: the survivor's journaled decision already told
        // us whether the dead peer's op took effect.
        let (lo, hi) = key_range(idx + 1);
        for k in lo..=hi {
            assert_eq!(
                map.find(t0, k),
                model.contains(&k),
                "seed {seed} child {idx}: map equivalence diverges at key {k}"
            );
        }
    }

    // Queue accounting: drain the recovered queue, then require every acked
    // (or Completed-recovered) enqueue to be observed exactly once, nothing
    // forbidden to appear, and per-producer FIFO order to hold.
    let mut drained: Vec<u64> = Vec::new();
    while let Some(v) = queue.dequeue(t0) {
        drained.push(v);
    }
    let producer = |v: u64| (v / QVAL_STRIDE) as usize - 1;
    let mut seen: HashMap<u64, u32> = HashMap::new();
    for &v in dequeued.iter().chain(&drained) {
        assert!(
            enq_order.contains_key(&v),
            "seed {seed}: value {v} observed but never (durably) enqueued"
        );
        *seen.entry(v).or_insert(0) += 1;
    }
    for (&v, &c) in &seen {
        assert_eq!(c, 1, "seed {seed}: value {v} observed {c} times (duplicated)");
    }
    for &v in &forbidden {
        assert!(!seen.contains_key(&v), "seed {seed}: Restart-decided enqueue {v} still surfaced");
    }
    for &v in enq_order.keys() {
        assert!(
            seen.contains_key(&v),
            "seed {seed}: acked enqueue {v} lost (not dequeued, not in the drain)"
        );
    }
    // Per-producer FIFO: the drain preserves each producer's enqueue order,
    // and everything a producer had dequeued precedes everything drained.
    let mut last_drained = [None::<usize>; SHARED_PROCS];
    let mut min_drained = [usize::MAX; SHARED_PROCS];
    for &v in &drained {
        let p = producer(v);
        let ord = enq_order[&v];
        assert!(
            last_drained[p].is_none_or(|prev| prev < ord),
            "seed {seed}: drain violates producer {p}'s FIFO order at {v}"
        );
        last_drained[p] = Some(ord);
        min_drained[p] = min_drained[p].min(ord);
    }
    for &v in &dequeued {
        let p = producer(v);
        assert!(
            enq_order[&v] < min_drained[p],
            "seed {seed}: dequeued {v} is newer than a still-queued value of producer {p}"
        );
    }

    drop((map, queue, store));
    let _ = std::fs::remove_dir_all(&dir);
    (acked, inflight, progress_observed)
}

/// The kill-one-of-N matrix: [`SHARED_PROCS`] live processes mutate ONE
/// shared heap (map + queue through a `Store`); one is SIGKILLed at seeded
/// points; survivors keep serving (asserted DURING the recovery window),
/// zero acked ops are lost, and the dead pid's in-flight op is detectably
/// resolved by a survivor — all verified against per-process journals.
#[test]
fn shared_kill_one_of_n_recovers_online() {
    let seeds: u64 =
        std::env::var("ISB_SHARED_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    let mut progress_seeds = 0u64;
    for seed in 0..seeds {
        let (acked, inflight, progressed) = run_one_shared_seed(seed, false);
        total_acked += acked;
        total_inflight += inflight;
        progress_seeds += progressed as u64;
    }
    println!(
        "shared kill-one-of-{SHARED_PROCS} matrix: {seeds} kills, {total_acked} acked ops \
         verified, {total_inflight} in-flight ops resolved by survivors, \
         progress-during-recovery observed on {progress_seeds} seeds"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
    assert!(progress_seeds > 0, "no seed ever observed the recovery window — hold timing broken");
}

/// The recoverer itself is SIGKILLed mid-lease: the last survivor detects
/// the dead recoverer, STEALS the lease (fresh sequence number supersedes
/// it), and recovers BOTH dead peers — service never stops.
#[test]
fn shared_kill_of_recoverer_is_superseded() {
    let seeds: u64 =
        std::env::var("ISB_SHARED_KILL2_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight, _) = run_one_shared_seed(seed, true);
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "shared second-kill matrix: {seeds} double kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops resolved by the surviving recoverer"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

// ---------------------------------------------------------------------------
// Peer growth: nodes a peer links from segments it grew must be readable in
// every other attached process WITHOUT any explicit segment refresh
// ---------------------------------------------------------------------------

const GROW_HEAP_BYTES: usize = 2 * 1024 * 1024;
const GROW_KEY_BASE: u64 = 1_000_000;
const GROW_KEYS: u64 = 60_000;
const GROW_QVALS: u64 = 512;
const GROW_PROBE_MAGIC: u64 = 0x5EED_F00D_CAFE_D00D;

/// Child half: joins the parent's live shared store, inserts enough distinct
/// keys to outgrow the initial segment (linking nodes from peer-grown
/// segments into the shared structures), enqueues a batch, reports how many
/// segments it grew, and exits cleanly.
#[test]
#[ignore = "child half of the peer-growth test; spawned by the parent test"]
fn shared_growth_child_worker() {
    let Ok(dir) = std::env::var("ISB_GROW_DIR") else { return };
    let dir = PathBuf::from(dir);
    nvm::tid::set_tid(0);
    let store = Store::open_shared_sized(heap_path(&dir), GROW_HEAP_BYTES).expect("child join");
    assert!(store.summary().heap.joined, "parent is live: the child must join");
    let slot = store.heap().my_participant().expect("participant slot");
    let t = nvm::mapped::MappedHeap::tid_band(slot).start;
    nvm::tid::set_tid(t);
    let map = store.hashmap::<0>("users", SHARDS).expect("users handle");
    let queue = store.queue::<0>("jobs").expect("jobs handle");
    let before = nvm::stats::snapshot();
    for k in GROW_KEY_BASE..GROW_KEY_BASE + GROW_KEYS {
        assert!(map.insert(t, k));
    }
    for v in 1..=GROW_QVALS {
        queue.enqueue(t, v);
    }
    let grown = nvm::stats::snapshot().since(&before).segments_grown;
    // Publish a raw pointer into a *grown* segment (the bump cursor lives in
    // the newest one): the parent dereferences it cold, before any operation
    // that could refresh its segment table as a side effect.
    let probe = store.heap().alloc(64).expect("probe block");
    unsafe { (probe as *mut u64).write_volatile(GROW_PROBE_MAGIC) };
    store.heap().commit(probe);
    std::fs::write(dir.join("grow_done"), format!("{grown} {}", probe as usize)).unwrap();
}

/// A peer grows the shared heap and links nodes from the new segments; this
/// process — attached since before the growth — must dereference them with
/// no refresh call in between. (Shared attachers map their whole reservation
/// file-backed, and growth extends the file before publishing the segment,
/// so peer-published bytes are readable the moment a pointer to them
/// exists.)
#[test]
fn shared_peer_growth_is_readable_without_refresh() {
    let dir = std::env::temp_dir().join(format!("isb_shared_grow_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    nvm::tid::set_tid(0);
    let store = Store::open_shared_sized(heap_path(&dir), GROW_HEAP_BYTES).expect("parent create");
    let pslot = store.heap().my_participant().unwrap();
    let t0 = nvm::mapped::MappedHeap::tid_band(pslot).start;
    nvm::tid::set_tid(t0);
    let map = store.hashmap::<0>("users", SHARDS).expect("users handle");
    let queue = store.queue::<0>("jobs").expect("jobs handle");
    // Warm this process's descriptor/node caches: the post-growth reads
    // below must run without an allocator refill (a refill refreshes the
    // volatile segment table as a side effect, which would mask a missing
    // mapping — the raw-pointer walk itself is what's under test).
    for k in 1..=64u64 {
        assert!(map.insert(t0, k));
        assert!(map.find(t0, k));
        queue.enqueue(t0, k);
    }
    for _ in 1..=64u64 {
        queue.dequeue(t0);
    }

    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "shared_growth_child_worker", "--include-ignored", "--nocapture"])
        .env("ISB_GROW_DIR", &dir)
        .status()
        .expect("run growth child");
    assert!(status.success(), "growth child exited dirty: {status:?}");
    let done = std::fs::read_to_string(dir.join("grow_done")).unwrap();
    let mut parts = done.split_whitespace();
    let grown: u64 = parts.next().unwrap().parse().unwrap();
    let probe: usize = parts.next().unwrap().parse().unwrap();
    assert!(grown > 0, "child never grew the heap — raise GROW_KEYS to keep this test honest");
    assert!(
        probe > store.heap().base() as usize + GROW_HEAP_BYTES,
        "probe block not in a grown segment — raise GROW_KEYS to keep this test honest"
    );
    // The distilled hazard first: dereference the peer-published pointer
    // with this process's segment table untouched since before the growth.
    // SAFETY: the child committed the block before publishing its address,
    // and shared attachers keep the whole reservation mapped file-backed.
    let v = unsafe { (probe as *const u64).read_volatile() };
    assert_eq!(v, GROW_PROBE_MAGIC, "peer-published block unreadable");
    // Walk child-linked nodes (they live in segments grown after this
    // process attached) — no refresh_segments call on this path.
    for k in (GROW_KEY_BASE..GROW_KEY_BASE + GROW_KEYS).step_by(97) {
        assert!(map.find(t0, k), "child-inserted key {k} unreadable in the parent");
    }
    let mut seen = 0u64;
    while let Some(v) = queue.dequeue(t0) {
        assert!((1..=GROW_QVALS).contains(&v), "foreign queue value {v}");
        seen += 1;
    }
    assert_eq!(seen, GROW_QVALS, "child-enqueued values lost");
    drop((map, queue, store));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance matrix: all FIVE structure kinds in one heap pass a
/// SIGKILL/recover round-trip through the same generic attach driver.
#[test]
fn five_kinds_sigkill_recovers_through_one_driver() {
    let seeds: u64 =
        std::env::var("ISB_RESTART_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut total_acked = 0;
    let mut total_inflight = 0;
    for seed in 0..seeds {
        let (acked, inflight) = run_one_five_kinds_seed(seed);
        total_acked += acked;
        total_inflight += inflight;
    }
    println!(
        "five-kinds matrix: {seeds} kills, {total_acked} acked ops verified, \
         {total_inflight} in-flight ops detectably resolved"
    );
    assert!(total_acked > 0, "no seed produced any acked work — kill timing broken");
}

// ---------------------------------------------------------------------------
// Shared-heap KV service failover: SIGKILL one of two server PROCESSES on
// the same heap; the survivor serves the dead peer's clients while its
// healer recovers them online
// ---------------------------------------------------------------------------

const KV_SHARED_HEAP_BYTES: usize = 32 * 1024 * 1024;

/// Child: one shared-mode [`kvserve::Server`] process. Both children open
/// the SAME heap (`open_shared_sized` behind `Config::shared`), each inside
/// its own participant tid band, each running the peer-recovery healer.
/// Publishes its port as `kvport_<idx>` once accepting.
#[test]
#[ignore = "child half of the shared-heap KV failover leg; spawned by the parent test"]
fn shared_kv_server_child() {
    let Ok(dir) = std::env::var("ISB_KV_DIR") else { return };
    let dir = PathBuf::from(dir);
    let idx: usize = std::env::var("ISB_KV_IDX").unwrap().parse().unwrap();
    let mut cfg = kvserve::Config::new(dir.join("kvshared.heap"));
    cfg.heap_bytes = KV_SHARED_HEAP_BYTES;
    cfg.shards = 4;
    cfg.workers = 2;
    cfg.shared = true;
    let server = kvserve::Server::start(cfg).expect("shared server start");
    let tmp = dir.join(format!("kvport_{idx}.tmp"));
    std::fs::write(&tmp, server.local_addr().port().to_string()).unwrap();
    std::fs::rename(&tmp, dir.join(format!("kvport_{idx}"))).unwrap();
    let stop = dir.join("kvstop");
    while !stop.exists() {
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}

/// Two shared-mode KV server processes front one heap. One is SIGKILLed
/// mid-traffic; the survivor keeps serving its own clients throughout, and
/// the dead server's clients reconnect to the survivor and retry their
/// pending requests exactly-once. The survivor's healer resolves the dead
/// peer's in-flight op IDs online — retries that race it are answered with
/// the typed `Recovering` backpressure status, which the client absorbs.
#[test]
fn shared_kv_failover_serves_dead_peers_clients() {
    use isb_tests::kv::{wait_port, MapClient, QueueClient};

    let dir = std::env::temp_dir().join(format!("isb_kv_failover_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ctx = "kv-failover";

    let spawn = |idx: usize| {
        std::process::Command::new(std::env::current_exe().unwrap())
            .args(["--exact", "shared_kv_server_child", "--include-ignored", "--nocapture"])
            .env("ISB_KV_DIR", &dir)
            .env("ISB_KV_IDX", idx.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn shared kv server")
    };
    // Serialize the two starts: the first create and the joiner exercise
    // different attach paths, and this keeps which-is-which deterministic.
    let mut child0 = spawn(0);
    let addr0 = wait_port(&dir.join("kvport_0"), ctx);
    let mut child1 = spawn(1);
    let addr1 = wait_port(&dir.join("kvport_1"), ctx);

    // Survivor-side client on server 0; victim-side clients on server 1.
    let mut m0 = MapClient::new(11, 21, 5000);
    let mut m1 = MapClient::new(12, 22, 6000);
    let mut q1 = QueueClient::new(13, 23);
    m0.connect(addr0, false, ctx);
    m1.connect(addr1, false, ctx);
    q1.connect(addr1, false, ctx);

    for _ in 0..40 {
        assert!(m0.step(ctx), "{ctx}: warmup on server 0");
        assert!(m1.step(ctx), "{ctx}: warmup on server 1");
        assert!(q1.step(ctx), "{ctx}: warmup queue on server 1");
    }

    child1.kill().expect("SIGKILL server 1");
    child1.wait().expect("reap server 1");

    // Drive the victim clients into the transport error (their requests
    // stay pending) while the survivor keeps acking its own traffic.
    let t0 = Instant::now();
    while m1.step(ctx) || q1.step(ctx) {
        assert!(m0.step(ctx), "{ctx}: survivor must serve during peer death");
        assert!(t0.elapsed() < Duration::from_secs(30), "{ctx}: victim clients never failed over");
    }

    // Failover: the dead server's clients retry against the survivor. The
    // `recover` path retries pending ops exactly-once and replays the ack
    // watermark byte-identically — same contract as a restart, but served
    // by a different process while recovery happens online.
    m1.recover(addr0, ctx);
    q1.recover(addr0, ctx);

    for _ in 0..60 {
        assert!(m0.step(ctx), "{ctx}: post-failover server 0 client");
        assert!(m1.step(ctx), "{ctx}: post-failover migrated map client");
        assert!(q1.step(ctx), "{ctx}: post-failover migrated queue client");
    }

    m0.sweep(ctx);
    m1.sweep(ctx);
    q1.drain(ctx);

    std::fs::write(dir.join("kvstop"), b"ok").unwrap();
    let status = child0.wait().expect("reap server 0");
    assert!(status.success(), "{ctx}: survivor clean shutdown failed");
    let _ = std::fs::remove_dir_all(&dir);
}
