//! Cross-implementation equivalence: every set implementation (ISB list in
//! both tunings, ISB BST, Harris, DT, capsules in both variants) must give
//! identical responses on identical operation sequences — and equal the
//! `BTreeSet` model.

use nvm::CountingNvm;
use rand::{Rng, SeedableRng};

type M = CountingNvm;

enum Op {
    Ins(u64),
    Del(u64),
    Fnd(u64),
}

fn op_stream(seed: u64, n: usize, keys: u64) -> Vec<Op> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=keys);
            match rng.gen_range(0..3) {
                0 => Op::Ins(k),
                1 => Op::Del(k),
                _ => Op::Fnd(k),
            }
        })
        .collect()
}

fn run_all(ops: &[Op]) -> Vec<Vec<bool>> {
    nvm::tid::set_tid(0);
    let isb_list = isb::list::RList::<M, 0>::new();
    let isb_opt = isb::list::RList::<M, 1>::new();
    let isb_bst = isb::bst::RBst::<M, 0>::new();
    let isb_hm = isb::hashmap::RHashMap::<M, 0>::with_shards(8);
    let isb_hm_opt = isb::hashmap::RHashMap::<M, 1>::with_shards(4);
    let harris = baselines::harris::HarrisList::<M>::new();
    let dt = baselines::dt_list::DtList::<M>::new();
    let caps = baselines::capsules_list::CapsulesList::<M, false>::new();
    let caps_opt = baselines::capsules_list::CapsulesList::<M, true>::new();
    let mut model = std::collections::BTreeSet::new();

    let mut results: Vec<Vec<bool>> = vec![Vec::new(); 10];
    for op in ops {
        let rs: [bool; 10] = match *op {
            Op::Ins(k) => [
                isb_list.insert(0, k),
                isb_opt.insert(0, k),
                isb_bst.insert(0, k),
                isb_hm.insert(0, k),
                isb_hm_opt.insert(0, k),
                harris.insert(0, k),
                dt.insert(0, k),
                caps.insert(0, k),
                caps_opt.insert(0, k),
                model.insert(k),
            ],
            Op::Del(k) => [
                isb_list.delete(0, k),
                isb_opt.delete(0, k),
                isb_bst.delete(0, k),
                isb_hm.delete(0, k),
                isb_hm_opt.delete(0, k),
                harris.delete(0, k),
                dt.delete(0, k),
                caps.delete(0, k),
                caps_opt.delete(0, k),
                model.remove(&k),
            ],
            Op::Fnd(k) => [
                isb_list.find(0, k),
                isb_opt.find(0, k),
                isb_bst.find(0, k),
                isb_hm.find(0, k),
                isb_hm_opt.find(0, k),
                harris.find(0, k),
                dt.find(0, k),
                caps.find(0, k),
                caps_opt.find(0, k),
                model.contains(&k),
            ],
        };
        for (i, r) in rs.iter().enumerate() {
            results[i].push(*r);
        }
    }
    results
}

#[test]
fn all_set_implementations_agree() {
    let _gate = isb::counters::gate_shared();
    for seed in [1u64, 7, 42, 1337] {
        let ops = op_stream(seed, 800, 32);
        let results = run_all(&ops);
        let model = results.last().unwrap().clone();
        let names = [
            "Isb",
            "Isb-Opt",
            "Isb-BST",
            "Isb-HM",
            "Isb-HM-Opt",
            "Harris-LL",
            "DT-Opt",
            "Capsules",
            "Capsules-Opt",
        ];
        for (i, name) in names.iter().enumerate() {
            assert_eq!(results[i], model, "{name} diverged from the model (seed {seed})");
        }
    }
}

#[test]
fn persistence_modes_do_not_change_semantics() {
    // The same op stream gives the same answers under every persistency model.
    let _gate = isb::counters::gate_shared();
    nvm::tid::set_tid(0);
    let ops = op_stream(99, 600, 24);
    let real = isb::list::RList::<nvm::RealNvm, 0>::new();
    let none = isb::list::RList::<nvm::NoPersist, 0>::new();
    let count = isb::list::RList::<CountingNvm, 0>::new();
    for op in &ops {
        match *op {
            Op::Ins(k) => {
                let a = real.insert(0, k);
                assert_eq!(a, none.insert(0, k));
                assert_eq!(a, count.insert(0, k));
            }
            Op::Del(k) => {
                let a = real.delete(0, k);
                assert_eq!(a, none.delete(0, k));
                assert_eq!(a, count.delete(0, k));
            }
            Op::Fnd(k) => {
                let a = real.find(0, k);
                assert_eq!(a, none.find(0, k));
                assert_eq!(a, count.find(0, k));
            }
        }
    }
}

#[test]
fn queues_agree_on_random_streams() {
    let _gate = isb::counters::gate_shared();
    nvm::tid::set_tid(0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let isb_q = isb::queue::RQueue::<M, 0>::new();
    let ms = baselines::ms_queue::MsQueue::<M>::new();
    let log = baselines::log_queue::LogQueue::<M>::new();
    let capsg = baselines::capsules_queue::CapsulesQueue::<M, false>::new();
    let capsn = baselines::capsules_queue::CapsulesQueue::<M, true>::new();
    let mut model = std::collections::VecDeque::new();
    for i in 0..1500u64 {
        if rng.gen_bool(0.55) {
            isb_q.enqueue(0, i);
            ms.enqueue(0, i);
            log.enqueue(0, i);
            capsg.enqueue(0, i);
            capsn.enqueue(0, i);
            model.push_back(i);
        } else {
            let want = model.pop_front();
            assert_eq!(isb_q.dequeue(0), want, "isb");
            assert_eq!(ms.dequeue(0), want, "ms");
            assert_eq!(log.dequeue(0), want, "log");
            assert_eq!(capsg.dequeue(0), want, "caps-general");
            assert_eq!(capsn.dequeue(0), want, "caps-normal");
        }
    }
}

#[test]
fn no_leaks_across_collection_cycles() {
    let _gate = isb::counters::gate_exclusive();
    nvm::tid::set_tid(0);
    let nodes0 = isb::counters::live_nodes();
    let infos0 = isb::counters::live_infos();
    {
        let list = isb::list::RList::<M, 0>::new();
        let bst = isb::bst::RBst::<M, 0>::new();
        let q = isb::queue::RQueue::<M, 0>::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for i in 0..4000u64 {
            let k = rng.gen_range(1..64u64);
            match rng.gen_range(0..4) {
                0 => {
                    list.insert(0, k);
                    bst.insert(0, k);
                }
                1 => {
                    list.delete(0, k);
                    bst.delete(0, k);
                }
                2 => {
                    q.enqueue(0, i);
                }
                _ => {
                    q.dequeue(0);
                }
            }
        }
    }
    assert_eq!(isb::counters::live_nodes(), nodes0, "node leak/double-free");
    assert_eq!(isb::counters::live_infos(), infos0, "info leak/double-free");
}
