//! Persist-placement regression test for the `set_core` extraction.
//!
//! Golden per-operation persistency-instruction counts (pwb / pbarrier /
//! pbarrier-lines / pfence / psync under `CountingNvm`), recorded from the
//! pre-extraction `RList` on a deterministic single-thread scenario. The
//! head-parameterized core must reproduce them **bit-for-bit** for both
//! persistency placements — and a one-shard `RHashMap` must match the same
//! table exactly, proving the wrapper layers add no persistency traffic.
//!
//! The only tolerated variance is `pwb` on the insert *update* path: the two
//! fresh 24-byte nodes are flushed with line granularity and may straddle a
//! cache-line boundary depending on heap placement, adding at most one line
//! per node. Every other component (events, fences, syncs, barrier lines —
//! `Info` is 64-byte aligned) is exact.
//!
//! Everything runs in ONE #[test]: the stats counters are process-global and
//! this file is its own test binary, so a single test keeps the measurement
//! interference-free.
//!
//! The table is checked for **pooled** (default) and **boxed** allocation,
//! and again on a pooled list that was churned until its descriptors and
//! nodes come from the recycle path — pooling must not change persist
//! placement by a single instruction.

use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::pool::PoolCfg;
use nvm::CountingNvm;
use reclaim::Collector;

/// `(pwb, pbarrier, pbarrier_lines, pfence, psync, response, node_flushes)`;
/// `node_flushes` = number of fresh nodes flushed by the op (slack lines).
type Golden = (u64, u64, u64, u64, u64, bool, u64);

/// Pre-extraction baseline, untuned placement ("Isb").
const GOLDEN_ISB: [(&str, Golden); 6] = [
    ("insert-new", (11, 3, 4, 0, 5, true, 2)),
    ("insert-dup", (2, 3, 3, 0, 2, false, 0)),
    ("find-hit", (1, 2, 2, 0, 1, true, 0)),
    ("find-miss", (1, 2, 2, 0, 1, false, 0)),
    ("delete-hit", (7, 3, 4, 0, 5, true, 0)),
    ("delete-miss", (2, 3, 3, 0, 2, false, 0)),
];

/// Pre-extraction baseline, hand-tuned placement ("Isb-Opt").
const GOLDEN_OPT: [(&str, Golden); 6] = [
    ("insert-new", (14, 1, 1, 2, 3, true, 2)),
    ("insert-dup", (4, 1, 1, 2, 1, false, 0)),
    ("find-hit", (2, 1, 1, 1, 1, true, 0)),
    ("find-miss", (2, 1, 1, 1, 1, false, 0)),
    ("delete-hit", (10, 1, 1, 2, 3, true, 0)),
    ("delete-miss", (4, 1, 1, 2, 1, false, 0)),
];

struct SetUnderTest<'a> {
    name: &'a str,
    insert: Box<dyn Fn(u64) -> bool + 'a>,
    delete: Box<dyn Fn(u64) -> bool + 'a>,
    find: Box<dyn Fn(u64) -> bool + 'a>,
}

fn check_against(golden: &[(&str, Golden); 6], s: &SetUnderTest<'_>) {
    // The fixed scenario: every op hits a deterministic algorithm path on a
    // set whose only mutation history is this sequence.
    let ops: [(&str, &dyn Fn() -> bool); 6] = [
        ("insert-new", &|| (s.insert)(5)),
        ("insert-dup", &|| (s.insert)(5)),
        ("find-hit", &|| (s.find)(5)),
        ("find-miss", &|| (s.find)(6)),
        ("delete-hit", &|| (s.delete)(5)),
        ("delete-miss", &|| (s.delete)(5)),
    ];
    for ((opname, op), (gname, g)) in ops.iter().zip(golden.iter()) {
        assert_eq!(opname, gname);
        let before = nvm::stats::snapshot();
        let resp = op();
        let d = nvm::stats::snapshot().since(&before);
        let (pwb, pbarrier, pblines, pfence, psync, want_resp, node_flushes) = *g;
        let ctx = format!("{} {opname}", s.name);
        assert_eq!(resp, want_resp, "{ctx}: response changed");
        assert!(
            (pwb..=pwb + node_flushes).contains(&d.pwb),
            "{ctx}: pwb {} outside [{}, {}]",
            d.pwb,
            pwb,
            pwb + node_flushes
        );
        assert_eq!(d.pbarrier, pbarrier, "{ctx}: pbarrier count changed");
        assert_eq!(d.pbarrier_lines, pblines, "{ctx}: pbarrier lines changed");
        assert_eq!(d.pfence, pfence, "{ctx}: pfence count changed");
        assert_eq!(d.psync, psync, "{ctx}: psync count changed");
    }
}

#[test]
fn set_core_extraction_preserves_persist_placement() {
    nvm::tid::set_tid(0);

    // Default (pooled) allocation, fresh structures.
    let list = RList::<CountingNvm, false>::new();
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, true>::new();
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );

    // Boxed (pre-pool) allocation must reproduce the same table bit-for-bit.
    let list = RList::<CountingNvm, false>::boxed();
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, true>::boxed();
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );

    // Pooled with the recycle path HOT: a tiny pool churned until reuse is
    // guaranteed (the leak counters prove it below). The scenario keys
    // (5, 6) are untouched by the churn key (9), so every op still takes
    // the same algorithm path over the same structure shape.
    let reuse0 = isb::counters::info_reuses();
    let warm = RList::<CountingNvm, false>::with_config(Collector::new(), PoolCfg::tiny(8));
    for _ in 0..300 {
        assert!(warm.insert(0, 9));
        assert!(warm.delete(0, 9));
    }
    assert!(
        isb::counters::info_reuses() > reuse0,
        "warmup never hit the recycle path — the pooled golden run is vacuous"
    );
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>/pooled-warm",
            insert: Box::new(|k| warm.insert(0, k)),
            delete: Box::new(|k| warm.delete(0, k)),
            find: Box::new(|k| warm.find(0, k)),
        },
    );
    let reuse0 = isb::counters::info_reuses();
    let warm = RList::<CountingNvm, true>::with_config(Collector::new(), PoolCfg::tiny(8));
    for _ in 0..300 {
        assert!(warm.insert(0, 9));
        assert!(warm.delete(0, 9));
    }
    assert!(
        isb::counters::info_reuses() > reuse0,
        "tuned warmup never hit the recycle path — the pooled golden run is vacuous"
    );
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>/pooled-warm",
            insert: Box::new(|k| warm.insert(0, k)),
            delete: Box::new(|k| warm.delete(0, k)),
            find: Box::new(|k| warm.find(0, k)),
        },
    );

    // A one-shard map is the same bucket algorithm behind a shard function
    // that performs no persistency instructions: identical placement.
    let map = RHashMap::<CountingNvm, false>::with_shards(1);
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RHashMap<Isb>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, true>::with_shards(1);
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RHashMap<Isb-Opt>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, false>::boxed_with_shards(1);
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RHashMap<Isb>/1/boxed",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
}
