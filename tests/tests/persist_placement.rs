//! Persist-placement regression test for the `set_core` extraction.
//!
//! Golden per-operation persistency-instruction counts (pwb / pbarrier /
//! pbarrier-lines / pfence / psync under `CountingNvm`), recorded from the
//! pre-extraction `RList` on a deterministic single-thread scenario. The
//! head-parameterized core must reproduce them **bit-for-bit** for both
//! persistency placements — and a one-shard `RHashMap` must match the same
//! table exactly, proving the wrapper layers add no persistency traffic.
//!
//! The only tolerated variance is `pwb` on the insert *update* path: the two
//! fresh 24-byte nodes are flushed with line granularity and may straddle a
//! cache-line boundary depending on heap placement, adding at most one line
//! per node. Every other component (events, fences, syncs, barrier lines —
//! `Info` is 64-byte aligned) is exact.
//!
//! Everything runs in ONE #[test]: the stats counters are process-global and
//! this file is its own test binary, so a single test keeps the measurement
//! interference-free.
//!
//! The table is checked for **pooled** (default) and **boxed** allocation,
//! and again on a pooled list that was churned until its descriptors and
//! nodes come from the recycle path — pooling must not change persist
//! placement by a single instruction.

use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::pool::PoolCfg;
use isb::queue::RQueue;
use nvm::CountingNvm;
use reclaim::Collector;

/// `(pwb, pbarrier, pbarrier_lines, pfence, psync, response, node_flushes)`;
/// `node_flushes` = number of fresh nodes flushed by the op (slack lines).
type Golden = (u64, u64, u64, u64, u64, bool, u64);

/// Pre-extraction baseline, untuned placement ("Isb").
const GOLDEN_ISB: [(&str, Golden); 6] = [
    ("insert-new", (11, 3, 4, 0, 5, true, 2)),
    ("insert-dup", (2, 3, 3, 0, 2, false, 0)),
    ("find-hit", (1, 2, 2, 0, 1, true, 0)),
    ("find-miss", (1, 2, 2, 0, 1, false, 0)),
    ("delete-hit", (7, 3, 4, 0, 5, true, 0)),
    ("delete-miss", (2, 3, 3, 0, 2, false, 0)),
];

/// Pre-extraction baseline, hand-tuned placement ("Isb-Opt").
const GOLDEN_OPT: [(&str, Golden); 6] = [
    ("insert-new", (14, 1, 1, 2, 3, true, 2)),
    ("insert-dup", (4, 1, 1, 2, 1, false, 0)),
    ("find-hit", (2, 1, 1, 1, 1, true, 0)),
    ("find-miss", (2, 1, 1, 1, 1, false, 0)),
    ("delete-hit", (10, 1, 1, 2, 3, true, 0)),
    ("delete-miss", (4, 1, 1, 2, 1, false, 0)),
];

/// Golden row for the coalescing arms: `(pwb, elided_min, pbarrier,
/// pbarrier_lines, pfence, psync, response, pwb_slack)`.
///
/// Under `CountingNvm` the `pwb` column counts *pwb-equivalents*: coalesced
/// write-backs are counted at issue (when the line enters the [`nvm::coalesce`]
/// set) and a duplicate line bumps `pwb_elided` instead. `pwb_slack` widens
/// the `pwb` assertion in BOTH directions: each fresh node line may straddle
/// a cache-line boundary (+1 pwb) or land on a line another fresh object
/// already noted (−1 pwb, +1 elided) depending on heap placement, so the
/// dedupe outcome — unlike everything else in the table — is not placement-
/// independent. `elided_min` is a lower bound: every mutating op must elide
/// at least the `RD_q` write-back that `publish_arm` dedupes against the
/// same-line `CP_q` flush. Fence/sync/barrier columns stay exact.
type GoldenCoal = (u64, u64, u64, u64, u64, u64, bool, u64);

/// Coalescing placement ("Isb-Coal", `ARM = 2`) for the ordered-set core.
const GOLDEN_COAL: [(&str, GoldenCoal); 6] = [
    ("insert-new", (13, 1, 1, 1, 2, 3, true, 2)),
    ("insert-dup", (3, 1, 1, 1, 2, 1, false, 0)),
    ("find-hit", (2, 0, 1, 1, 1, 1, true, 0)),
    ("find-miss", (2, 0, 1, 1, 1, 1, false, 0)),
    ("delete-hit", (9, 1, 1, 1, 2, 3, true, 0)),
    ("delete-miss", (3, 1, 1, 1, 2, 1, false, 0)),
];

/// Link-persist placement ("Isb-LP", `ARM = 3`) for the ordered-set core.
const GOLDEN_LP: [(&str, GoldenCoal); 6] = [
    ("insert-new", (10, 1, 1, 1, 2, 3, true, 2)),
    ("insert-dup", (3, 1, 1, 1, 2, 1, false, 0)),
    ("find-hit", (2, 0, 1, 1, 1, 1, true, 0)),
    ("find-miss", (2, 0, 1, 1, 1, 1, false, 0)),
    ("delete-hit", (8, 1, 1, 1, 2, 3, true, 0)),
    ("delete-miss", (3, 1, 1, 1, 2, 1, false, 0)),
];

/// Queue goldens, one row per scenario step (two enqueues, two successful
/// dequeues, one empty dequeue). The tuned arm's second enqueue pays one
/// extra `pwb` for the lagging-tail fix-up, so the steps are kept distinct.
/// Enqueue `pwb` nominals assume the fresh 24-byte node occupies one cache
/// line; the `node_flushes` slack absorbs a straddle (+1 line), which DOES
/// occur in some build configurations (heap placement shifts with features).
const QUEUE_ISB: [(&str, Golden); 5] = [
    ("enqueue-1", (9, 3, 4, 0, 5, true, 1)),
    ("enqueue-2", (9, 3, 4, 0, 5, true, 1)),
    ("dequeue-1", (7, 3, 4, 0, 5, true, 0)),
    ("dequeue-2", (7, 3, 4, 0, 5, true, 0)),
    ("dequeue-empty", (2, 3, 3, 0, 2, false, 0)),
];

const QUEUE_OPT: [(&str, Golden); 5] = [
    ("enqueue-1", (11, 1, 1, 2, 3, true, 1)),
    ("enqueue-2", (12, 1, 1, 2, 3, true, 1)),
    ("dequeue-1", (10, 1, 1, 2, 3, true, 0)),
    ("dequeue-2", (10, 1, 1, 2, 3, true, 0)),
    ("dequeue-empty", (4, 1, 1, 2, 1, false, 0)),
];

const QUEUE_COAL: [(&str, GoldenCoal); 5] = [
    ("enqueue-1", (10, 1, 1, 1, 2, 3, true, 1)),
    ("enqueue-2", (10, 1, 1, 1, 2, 3, true, 1)),
    ("dequeue-1", (9, 1, 1, 1, 2, 3, true, 0)),
    ("dequeue-2", (9, 1, 1, 1, 2, 3, true, 0)),
    ("dequeue-empty", (3, 1, 1, 1, 2, 1, false, 0)),
];

/// The LP queue merges the tag-phase `psync` into the update-phase one on
/// enqueue (single-affect help), dropping a whole round trip: `psync` 3 → 2.
const QUEUE_LP: [(&str, GoldenCoal); 5] = [
    ("enqueue-1", (8, 1, 1, 1, 2, 2, true, 1)),
    ("enqueue-2", (8, 1, 1, 1, 2, 2, true, 1)),
    ("dequeue-1", (8, 1, 1, 1, 2, 3, true, 0)),
    ("dequeue-2", (8, 1, 1, 1, 2, 3, true, 0)),
    ("dequeue-empty", (3, 1, 1, 1, 2, 1, false, 0)),
];

struct SetUnderTest<'a> {
    name: &'a str,
    insert: Box<dyn Fn(u64) -> bool + 'a>,
    delete: Box<dyn Fn(u64) -> bool + 'a>,
    find: Box<dyn Fn(u64) -> bool + 'a>,
}

/// One named, ready-to-run operation whose `bool` result is golden-checked.
type OpRow<'a> = (&'static str, Box<dyn Fn() -> bool + 'a>);

fn set_ops<'a>(s: &'a SetUnderTest<'a>) -> [OpRow<'a>; 6] {
    [
        ("insert-new", Box::new(|| (s.insert)(5))),
        ("insert-dup", Box::new(|| (s.insert)(5))),
        ("find-hit", Box::new(|| (s.find)(5))),
        ("find-miss", Box::new(|| (s.find)(6))),
        ("delete-hit", Box::new(|| (s.delete)(5))),
        ("delete-miss", Box::new(|| (s.delete)(5))),
    ]
}

fn queue_ops<M, const ARM: u8>(q: &RQueue<M, ARM>) -> [OpRow<'_>; 5]
where
    M: nvm::Persist,
{
    [
        (
            "enqueue-1",
            Box::new(|| {
                q.enqueue(0, 7);
                true
            }),
        ),
        (
            "enqueue-2",
            Box::new(|| {
                q.enqueue(0, 8);
                true
            }),
        ),
        ("dequeue-1", Box::new(|| q.dequeue(0) == Some(7))),
        ("dequeue-2", Box::new(|| q.dequeue(0) == Some(8))),
        ("dequeue-empty", Box::new(|| q.dequeue(0).is_some())),
    ]
}

fn check_rows(name: &str, ops: &[OpRow<'_>], golden: &[(&str, Golden)]) {
    for ((opname, op), (gname, g)) in ops.iter().zip(golden.iter()) {
        assert_eq!(opname, gname);
        let before = nvm::stats::snapshot();
        let resp = op();
        let d = nvm::stats::snapshot().since(&before);
        let (pwb, pbarrier, pblines, pfence, psync, want_resp, node_flushes) = *g;
        let ctx = format!("{name} {opname}");
        assert_eq!(resp, want_resp, "{ctx}: response changed");
        assert!(
            (pwb..=pwb + node_flushes).contains(&d.pwb),
            "{ctx}: pwb {} outside [{}, {}]",
            d.pwb,
            pwb,
            pwb + node_flushes
        );
        assert_eq!(d.pbarrier, pbarrier, "{ctx}: pbarrier count changed");
        assert_eq!(d.pbarrier_lines, pblines, "{ctx}: pbarrier lines changed");
        assert_eq!(d.pfence, pfence, "{ctx}: pfence count changed");
        assert_eq!(d.psync, psync, "{ctx}: psync count changed");
    }
}

fn check_rows_coal(name: &str, ops: &[OpRow<'_>], golden: &[(&str, GoldenCoal)]) {
    for ((opname, op), (gname, g)) in ops.iter().zip(golden.iter()) {
        assert_eq!(opname, gname);
        let before = nvm::stats::snapshot();
        let resp = op();
        let d = nvm::stats::snapshot().since(&before);
        let (pwb, elided_min, pbarrier, pblines, pfence, psync, want_resp, slack) = *g;
        let ctx = format!("{name} {opname}");
        assert_eq!(resp, want_resp, "{ctx}: response changed");
        assert!(
            (pwb.saturating_sub(slack)..=pwb + slack).contains(&d.pwb),
            "{ctx}: pwb {} outside [{}, {}]",
            d.pwb,
            pwb.saturating_sub(slack),
            pwb + slack
        );
        assert!(
            d.pwb_elided >= elided_min,
            "{ctx}: pwb_elided {} < {elided_min} — the coalescing set never deduped",
            d.pwb_elided
        );
        // Every pwb-equivalent the coalescing arms issue must eventually hit
        // a physical flush path: drained at a fence or evicted on overflow.
        assert!(
            d.lines_coalesced <= d.pwb,
            "{ctx}: drained more lines ({}) than pwbs issued ({})",
            d.lines_coalesced,
            d.pwb
        );
        assert_eq!(d.pbarrier, pbarrier, "{ctx}: pbarrier count changed");
        assert_eq!(d.pbarrier_lines, pblines, "{ctx}: pbarrier lines changed");
        assert_eq!(d.pfence, pfence, "{ctx}: pfence count changed");
        assert_eq!(d.psync, psync, "{ctx}: psync count changed");
    }
}

fn check_against(golden: &[(&str, Golden); 6], s: &SetUnderTest<'_>) {
    // The fixed scenario: every op hits a deterministic algorithm path on a
    // set whose only mutation history is this sequence.
    check_rows(s.name, &set_ops(s), golden);
}

fn check_against_coal(golden: &[(&str, GoldenCoal); 6], s: &SetUnderTest<'_>) {
    check_rows_coal(s.name, &set_ops(s), golden);
}

#[test]
fn set_core_extraction_preserves_persist_placement() {
    nvm::tid::set_tid(0);

    // Default (pooled) allocation, fresh structures.
    let list = RList::<CountingNvm, 0>::new();
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, 1>::new();
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );

    // Boxed (pre-pool) allocation must reproduce the same table bit-for-bit.
    let list = RList::<CountingNvm, 0>::boxed();
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, 1>::boxed();
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );

    // Pooled with the recycle path HOT: a tiny pool churned until reuse is
    // guaranteed (the leak counters prove it below). The scenario keys
    // (5, 6) are untouched by the churn key (9), so every op still takes
    // the same algorithm path over the same structure shape.
    let reuse0 = isb::counters::info_reuses();
    let warm = RList::<CountingNvm, 0>::with_config(Collector::new(), PoolCfg::tiny(8));
    for _ in 0..300 {
        assert!(warm.insert(0, 9));
        assert!(warm.delete(0, 9));
    }
    assert!(
        isb::counters::info_reuses() > reuse0,
        "warmup never hit the recycle path — the pooled golden run is vacuous"
    );
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RList<Isb>/pooled-warm",
            insert: Box::new(|k| warm.insert(0, k)),
            delete: Box::new(|k| warm.delete(0, k)),
            find: Box::new(|k| warm.find(0, k)),
        },
    );
    let reuse0 = isb::counters::info_reuses();
    let warm = RList::<CountingNvm, 1>::with_config(Collector::new(), PoolCfg::tiny(8));
    for _ in 0..300 {
        assert!(warm.insert(0, 9));
        assert!(warm.delete(0, 9));
    }
    assert!(
        isb::counters::info_reuses() > reuse0,
        "tuned warmup never hit the recycle path — the pooled golden run is vacuous"
    );
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RList<Isb-Opt>/pooled-warm",
            insert: Box::new(|k| warm.insert(0, k)),
            delete: Box::new(|k| warm.delete(0, k)),
            find: Box::new(|k| warm.find(0, k)),
        },
    );

    // A one-shard map is the same bucket algorithm behind a shard function
    // that performs no persistency instructions: identical placement.
    let map = RHashMap::<CountingNvm, 0>::with_shards(1);
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RHashMap<Isb>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, 1>::with_shards(1);
    check_against(
        &GOLDEN_OPT,
        &SetUnderTest {
            name: "RHashMap<Isb-Opt>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, 0>::boxed_with_shards(1);
    check_against(
        &GOLDEN_ISB,
        &SetUnderTest {
            name: "RHashMap<Isb>/1/boxed",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );

    // ---- Coalescing arms (PR 6) --------------------------------------
    //
    // Same scenario, arms 2 (Isb-Coal) and 3 (Isb-LP): pooled and boxed
    // lists, a one-shard map, and a recycle-hot LP list.
    let list = RList::<CountingNvm, 2>::new();
    check_against_coal(
        &GOLDEN_COAL,
        &SetUnderTest {
            name: "RList<Isb-Coal>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, 2>::boxed();
    check_against_coal(
        &GOLDEN_COAL,
        &SetUnderTest {
            name: "RList<Isb-Coal>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, 3>::new();
    check_against_coal(
        &GOLDEN_LP,
        &SetUnderTest {
            name: "RList<Isb-LP>",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let list = RList::<CountingNvm, 3>::boxed();
    check_against_coal(
        &GOLDEN_LP,
        &SetUnderTest {
            name: "RList<Isb-LP>/boxed",
            insert: Box::new(|k| list.insert(0, k)),
            delete: Box::new(|k| list.delete(0, k)),
            find: Box::new(|k| list.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, 2>::with_shards(1);
    check_against_coal(
        &GOLDEN_COAL,
        &SetUnderTest {
            name: "RHashMap<Isb-Coal>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let map = RHashMap::<CountingNvm, 3>::with_shards(1);
    check_against_coal(
        &GOLDEN_LP,
        &SetUnderTest {
            name: "RHashMap<Isb-LP>/1",
            insert: Box::new(|k| map.insert(0, k)),
            delete: Box::new(|k| map.delete(0, k)),
            find: Box::new(|k| map.find(0, k)),
        },
    );
    let reuse0 = isb::counters::info_reuses();
    let warm = RList::<CountingNvm, 3>::with_config(Collector::new(), PoolCfg::tiny(8));
    for _ in 0..300 {
        assert!(warm.insert(0, 9));
        assert!(warm.delete(0, 9));
    }
    assert!(
        isb::counters::info_reuses() > reuse0,
        "LP warmup never hit the recycle path — the pooled golden run is vacuous"
    );
    check_against_coal(
        &GOLDEN_LP,
        &SetUnderTest {
            name: "RList<Isb-LP>/pooled-warm",
            insert: Box::new(|k| warm.insert(0, k)),
            delete: Box::new(|k| warm.delete(0, k)),
            find: Box::new(|k| warm.find(0, k)),
        },
    );

    // ---- Queue goldens ------------------------------------------------
    let q = RQueue::<CountingNvm, 0>::new();
    check_rows("RQueue<Isb>", &queue_ops(&q), &QUEUE_ISB);
    let q = RQueue::<CountingNvm, 1>::new();
    check_rows("RQueue<Isb-Opt>", &queue_ops(&q), &QUEUE_OPT);
    let q = RQueue::<CountingNvm, 2>::new();
    check_rows_coal("RQueue<Isb-Coal>", &queue_ops(&q), &QUEUE_COAL);
    let q = RQueue::<CountingNvm, 3>::new();
    check_rows_coal("RQueue<Isb-LP>", &queue_ops(&q), &QUEUE_LP);
}

/// The tuning arms must form a monotone ladder on the nominal tables, the
/// untouched read-only placement must be bit-for-bit identical across arms,
/// and the LP arm must clear the ≥20% pwb-equivalent reduction bar on the
/// tuned hash-map and queue hot paths. Asserted on the golden CONSTANTS so
/// the claim is placement-noise-free; the measured runs above tie the
/// constants to reality.
#[test]
fn coalescing_arms_strictly_reduce_pwb_traffic() {
    // Mutating set ops: insert-new, insert-dup, delete-hit, delete-miss.
    for i in [0usize, 1, 4, 5] {
        let opt = GOLDEN_OPT[i].1 .0;
        let coal = GOLDEN_COAL[i].1 .0;
        let lp = GOLDEN_LP[i].1 .0;
        assert!(coal < opt, "{}: coal pwb {coal} !< opt {opt}", GOLDEN_OPT[i].0);
        assert!(lp <= coal, "{}: lp pwb {lp} !<= coal {coal}", GOLDEN_OPT[i].0);
    }
    // LP's cleanup elision must show up on the ops that untag nodes.
    for i in [0usize, 4] {
        assert!(GOLDEN_LP[i].1 .0 < GOLDEN_COAL[i].1 .0, "{}: LP saved nothing", GOLDEN_OPT[i].0);
    }
    // Read-only placement is untouched: find rows identical across tuned arms.
    for i in [2usize, 3] {
        let (opt, coal, lp) = (GOLDEN_OPT[i].1, GOLDEN_COAL[i].1, GOLDEN_LP[i].1);
        assert_eq!((opt.0, opt.3, opt.4), (coal.0, coal.4, coal.5), "find parity (coal)");
        assert_eq!((opt.0, opt.3, opt.4), (lp.0, lp.4, lp.5), "find parity (lp)");
    }
    // Queue ladder, per scenario step.
    for i in 0..5 {
        let opt = QUEUE_OPT[i].1 .0;
        let coal = QUEUE_COAL[i].1 .0;
        let lp = QUEUE_LP[i].1 .0;
        assert!(coal < opt, "{}: coal pwb {coal} !< opt {opt}", QUEUE_OPT[i].0);
        assert!(lp <= coal, "{}: lp pwb {lp} !<= coal {coal}", QUEUE_OPT[i].0);
    }
    for i in 0..4 {
        assert!(QUEUE_LP[i].1 .0 < QUEUE_COAL[i].1 .0, "{}: LP saved nothing", QUEUE_OPT[i].0);
    }
    // LP enqueue drops a whole psync (3 -> 2).
    assert_eq!(QUEUE_OPT[0].1 .4, 3);
    assert_eq!(QUEUE_LP[0].1 .5, 2);

    // >= 20% fewer pwb-equivalents on the tuned hash-map mutating hot path...
    let opt_sum: u64 = [0usize, 1, 4, 5].iter().map(|&i| GOLDEN_OPT[i].1 .0).sum();
    let lp_sum: u64 = [0usize, 1, 4, 5].iter().map(|&i| GOLDEN_LP[i].1 .0).sum();
    assert!(
        lp_sum * 5 <= opt_sum * 4,
        "map hot path: LP {lp_sum} pwb-eq vs tuned {opt_sum} — under 20% reduction"
    );
    // ...and across the whole queue scenario.
    let opt_sum: u64 = QUEUE_OPT.iter().map(|r| r.1 .0).sum();
    let lp_sum: u64 = QUEUE_LP.iter().map(|r| r.1 .0).sum();
    assert!(
        lp_sum * 5 <= opt_sum * 4,
        "queue hot path: LP {lp_sum} pwb-eq vs tuned {opt_sum} — under 20% reduction"
    );
}
