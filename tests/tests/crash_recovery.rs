//! Crash-recovery integration tests: seeded system-wide crashes over the
//! NVM simulator, adversarial image reconstruction, per-process recovery,
//! and exactly-once / detectability validation (DESIGN.md §8).

use bench_harness::crash::{run_list_scenario, run_queue_scenario, CrashCfg};

#[test]
fn list_survives_many_seeded_crashes() {
    let mut total_pending = 0;
    for seed in 0..40 {
        let rep = run_list_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 10,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    // Across 40 seeds, at least some crashes must have landed mid-operation,
    // otherwise the test exercises nothing.
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn list_survives_repeated_recovery_crashes() {
    for seed in 100..115 {
        run_list_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 8,
            recovery_crashes: 2, // recovery itself dies twice before completing
            seed,
        });
    }
}

#[test]
fn list_high_contention_crashes() {
    // Tiny key space per process ⇒ many adjacent-node conflicts and helping.
    for seed in 200..220 {
        run_list_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 100,
            keys_per_proc: 3,
            recovery_crashes: 1,
            seed,
        });
    }
}

#[test]
fn queue_survives_many_seeded_crashes() {
    let mut total = 0;
    for seed in 0..40 {
        let rep = run_queue_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 60,
            keys_per_proc: 16, // prefill
            recovery_crashes: 0,
            seed,
        });
        total += rep.completed;
    }
    assert!(total > 0);
}

#[test]
fn bst_survives_many_seeded_crashes() {
    for seed in 0..25 {
        bench_harness::crash::run_bst_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 8,
            recovery_crashes: 0,
            seed,
        });
    }
}

#[test]
fn bst_survives_repeated_recovery_crashes() {
    for seed in 500..510 {
        bench_harness::crash::run_bst_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 6,
            recovery_crashes: 2,
            seed,
        });
    }
}
