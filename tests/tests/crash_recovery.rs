//! Crash-recovery integration tests: seeded system-wide crashes over the
//! NVM simulator, adversarial image reconstruction, per-process recovery,
//! and exactly-once / detectability validation (DESIGN.md §8).

use bench_harness::crash::{
    run_hashmap_coal_scenario, run_hashmap_lp_scenario, run_hashmap_opt_scenario,
    run_hashmap_scenario, run_list_scenario, run_queue_coal_scenario, run_queue_lp_scenario,
    run_queue_scenario, CrashCfg,
};

#[test]
fn list_survives_many_seeded_crashes() {
    let mut total_pending = 0;
    for seed in 0..40 {
        let rep = run_list_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 10,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    // Across 40 seeds, at least some crashes must have landed mid-operation,
    // otherwise the test exercises nothing.
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn list_survives_repeated_recovery_crashes() {
    for seed in 100..115 {
        run_list_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 8,
            recovery_crashes: 2, // recovery itself dies twice before completing
            seed,
        });
    }
}

#[test]
fn list_high_contention_crashes() {
    // Tiny key space per process ⇒ many adjacent-node conflicts and helping.
    for seed in 200..220 {
        run_list_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 100,
            keys_per_proc: 3,
            recovery_crashes: 1,
            seed,
        });
    }
}

#[test]
fn hashmap_survives_many_seeded_crashes() {
    // Sharded map, untuned placement: 16 shards with 3 × 24 disjoint keys,
    // so the fibonacci shard function scatters each process's working set —
    // and therefore the crash-pending descriptors — across different
    // buckets, all funneling through the one shared RecArea. The generic
    // driver validates exactly-once responses, leak-free teardown and the
    // post-recovery POISON scan per seed.
    let mut total_pending = 0;
    for seed in 0..12 {
        let rep = run_hashmap_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 24,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn hashmap_opt_survives_many_seeded_crashes() {
    // Hand-tuned placement over the same scenario family, different seeds.
    let mut total_pending = 0;
    for seed in 700..712 {
        let rep = run_hashmap_opt_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 24,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn hashmap_survives_repeated_recovery_crashes() {
    // Multi-crash: recovery itself dies twice per seed, in both placements.
    for seed in 800..806 {
        run_hashmap_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 16,
            recovery_crashes: 2,
            seed,
        });
        run_hashmap_opt_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 16,
            recovery_crashes: 2,
            seed: seed + 50,
        });
    }
}

#[test]
fn hashmap_high_contention_crashes() {
    // Tiny per-process key space ⇒ adjacent-key conflicts concentrate in few
    // shards, exercising cross-process helping inside a bucket while other
    // buckets stay idle.
    for seed in 900..910 {
        run_hashmap_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 100,
            keys_per_proc: 3,
            recovery_crashes: 1,
            seed,
        });
    }
}

#[test]
fn hashmap_coal_survives_many_seeded_crashes() {
    // Coalescing placement: a noted line is an outstanding word until the
    // next fence, and `CP_q := 1` is deferred into `publish_arm` — the image
    // builder may crash an op between `begin` and publish with a durably-zero
    // checkpoint bit, which must read as Restart.
    let mut total_pending = 0;
    for seed in 1000..1012 {
        let rep = run_hashmap_coal_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 24,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn hashmap_lp_survives_many_seeded_crashes() {
    // Link-persist placement: cleanup untag flushes are elided entirely, so
    // the adversary can resurrect tags of completed operations; the scrub /
    // lazy-helping path must heal them without double-applying effects.
    let mut total_pending = 0;
    for seed in 1100..1112 {
        let rep = run_hashmap_lp_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 24,
            recovery_crashes: 0,
            seed,
        });
        total_pending += rep.pending;
    }
    assert!(total_pending > 0, "no crash ever landed mid-operation; harness broken");
}

#[test]
fn hashmap_coalescing_arms_survive_repeated_recovery_crashes() {
    for seed in 1200..1206 {
        run_hashmap_coal_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 16,
            recovery_crashes: 2,
            seed,
        });
        run_hashmap_lp_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 16,
            recovery_crashes: 2,
            seed: seed + 50,
        });
    }
}

#[test]
fn queue_survives_many_seeded_crashes() {
    let mut total = 0;
    for seed in 0..40 {
        let rep = run_queue_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 60,
            keys_per_proc: 16, // prefill
            recovery_crashes: 0,
            seed,
        });
        total += rep.completed;
    }
    assert!(total > 0);
}

#[test]
fn queue_coal_survives_many_seeded_crashes() {
    let mut total = 0;
    for seed in 2000..2020 {
        let rep = run_queue_coal_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 60,
            keys_per_proc: 16, // prefill
            recovery_crashes: 0,
            seed,
        });
        total += rep.completed;
    }
    assert!(total > 0);
}

#[test]
fn queue_lp_survives_many_seeded_crashes() {
    // LP enqueue skips the tag-phase `psync` (single-affect help): the crash
    // image may roll the tail-link CAS back while the descriptor and RD_q
    // survive, or persist the link while `result` rolls back — both must
    // resolve to exactly-once effects via Op-Recover.
    let mut total = 0;
    for seed in 2100..2120 {
        let rep = run_queue_lp_scenario(CrashCfg {
            procs: 4,
            ops_per_proc: 60,
            keys_per_proc: 16, // prefill
            recovery_crashes: 0,
            seed,
        });
        total += rep.completed;
    }
    assert!(total > 0);
}

#[test]
fn bst_survives_many_seeded_crashes() {
    for seed in 0..25 {
        bench_harness::crash::run_bst_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 80,
            keys_per_proc: 8,
            recovery_crashes: 0,
            seed,
        });
    }
}

#[test]
fn bst_survives_repeated_recovery_crashes() {
    for seed in 500..510 {
        bench_harness::crash::run_bst_scenario(CrashCfg {
            procs: 3,
            ops_per_proc: 60,
            keys_per_proc: 6,
            recovery_crashes: 2,
            seed,
        });
    }
}
