//! Attach-time corruption matrix for the mapped backend: every damaged-image
//! shape must fail with a **typed** error (`MapError` via `AttachError`) —
//! never undefined behaviour — and the benign torn states must heal. Covers
//! the superblock/bitmap/header shapes, cross-kind opens across all five
//! structure kinds plus the multi-structure store, and catalog-entry
//! corruption. Complements the in-crate roundtrip tests and the
//! cross-process SIGKILL harness (`restart.rs`).

use isb::bst::RBst;
use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::queue::RQueue;
use isb::recovery::AttachError;
use isb::stack::RStack;
use isb::store::Store;
use nvm::mapped::MappedHeap;
use nvm::{MapError, MappedNvm};
use std::path::{Path, PathBuf};

const SHARDS: usize = 4;
const HEAP_BYTES: usize = 2 * 1024 * 1024;

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "isb_corrupt_{}_{}_{name}.heap",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Builds a populated map heap at `path` and detaches cleanly.
fn mk_map(path: &PathBuf) {
    nvm::tid::set_tid(0);
    let (map, s) = RHashMap::<MappedNvm, 0>::attach_sized(path, SHARDS, HEAP_BYTES).unwrap();
    assert!(s.heap.created);
    for k in 1..=128u64 {
        assert!(map.insert(0, k));
    }
}

/// Overwrites `bytes` at `offset` in the heap file.
fn patch(path: &PathBuf, offset: u64, bytes: &[u8]) {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(bytes).unwrap();
}

fn read_at(path: &PathBuf, offset: u64) -> u64 {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 8];
    f.read_exact(&mut b).unwrap();
    u64::from_le_bytes(b)
}

fn read_word(path: &PathBuf, word: u64) -> u64 {
    read_at(path, word * 8)
}

/// Root-directory scan (superblock words 16..): payload offset for `key`.
fn root_offset(path: &PathBuf, key: u64) -> u64 {
    for s in 0..16u64 {
        if read_word(path, 16 + 2 * s) == key {
            return read_word(path, 16 + 2 * s + 1);
        }
    }
    panic!("root key {key:#x} not registered");
}

fn attach(path: &PathBuf) -> Result<(), AttachError> {
    RHashMap::<MappedNvm, 0>::attach_sized(path, SHARDS, HEAP_BYTES).map(|_| ())
}

/// Unwraps the heap-level error inside an `AttachError`.
fn map_err(r: Result<(), AttachError>) -> MapError {
    match r {
        Err(AttachError::Map(e)) => e,
        Err(e) => panic!("expected a heap-level MapError, got {e}"),
        Ok(()) => panic!("damaged heap must not attach"),
    }
}

#[test]
fn truncated_file_fails_typed() {
    let path = tmp("trunc");
    mk_map(&path);
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(HEAP_BYTES as u64 / 2).unwrap();
    drop(f);
    match map_err(attach(&path)) {
        MapError::Truncated { expected, found } => {
            assert_eq!(expected, HEAP_BYTES as u64);
            assert_eq!(found, HEAP_BYTES as u64 / 2);
        }
        e => panic!("expected Truncated, got {e}"),
    }
    // Sub-superblock truncation as well.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(100).unwrap();
    drop(f);
    assert!(matches!(map_err(attach(&path)), MapError::Truncated { .. }));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_magic_fails_typed() {
    let path = tmp("magic");
    mk_map(&path);
    patch(&path, 0, &0xBAD0_BAD0_BAD0_BAD0u64.to_le_bytes());
    match map_err(attach(&path)) {
        MapError::BadMagic(m) => assert_eq!(m, 0xBAD0_BAD0_BAD0_BAD0),
        e => panic!("expected BadMagic, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_fails_typed() {
    let path = tmp("version");
    mk_map(&path);
    patch(&path, 8, &99u64.to_le_bytes()); // word 1: version
    match map_err(attach(&path)) {
        MapError::BadVersion(v) => assert_eq!(v, 99),
        e => panic!("expected BadVersion, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_base_fails_typed() {
    let path = tmp("base");
    mk_map(&path);
    // Word 2: the recorded base. An unaligned/garbage base is rejected
    // before anything is mapped.
    patch(&path, 16, &0x0123_4567_u64.to_le_bytes());
    assert!(matches!(map_err(attach(&path)), MapError::BadSuperblock(_)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn superblock_from_a_different_base_fails_typed_not_ub() {
    let path = tmp("rebase");
    mk_map(&path);
    // Rewrite the recorded base to a *valid-looking but wrong* page-aligned
    // address: the mapping then lands somewhere the structure's absolute
    // pointers do not reference. The pre-recovery validation walk must turn
    // this into a typed error instead of chasing wild pointers.
    let old = read_word(&path, 2);
    let wrong = old ^ 0x2000_0000_0000; // flip a high bit: stays aligned & canonical
    patch(&path, 16, &wrong.to_le_bytes());
    match map_err(attach(&path)) {
        MapError::CorruptPointer { addr } => {
            // The first out-of-window pointer is reported verbatim.
            assert_ne!(addr, 0);
        }
        // If the kernel could not map at `wrong` either, the relocation
        // pass rebases *relative to the recorded base*, which scrambles the
        // pointers the same way — still a typed CorruptPointer.
        e => panic!("expected CorruptPointer, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pointer_at_mapping_end_fails_typed_not_oob() {
    let path = tmp("oob");
    mk_map(&path);
    // Point the map's root block (the bucket-head array, registered under
    // the generic STRUCT root key) at the very last 8-aligned address of
    // the mapping: it is aligned and *starts* inside the arena, but reading
    // a whole node there would run past the mapping end. The span-aware
    // validation must reject it before any dereference.
    let base = read_word(&path, 2);
    let size = read_word(&path, 3);
    let heads_off = root_offset(&path, 0x5354_5543); // rootkeys::STRUCT
    patch(&path, heads_off, &(base + size - 8).to_le_bytes());
    match map_err(attach(&path)) {
        MapError::CorruptPointer { addr } => assert_eq!(addr, base + size - 8),
        e => panic!("expected CorruptPointer, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bitmap_overlapping_data_region_fails_typed() {
    let path = tmp("bmfit");
    mk_map(&path);
    // Shrink the recorded data offset to the superblock page: the commit
    // bitmap would then overlap the data region, and bm_set/bm_clear would
    // silently scribble over block payloads. Must be a typed error.
    patch(&path, 6 * 8, &4096u64.to_le_bytes());
    assert!(matches!(map_err(attach(&path)), MapError::BadSuperblock(_)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_bitmap_fails_typed() {
    let path = tmp("bitmap");
    mk_map(&path);
    // The commit bitmap starts at word 7's offset (PAGE = 4096). Set a bit
    // in the middle of a committed block's payload: a set bit with no
    // committed header under it cannot arise from any crash ordering.
    let bm_off = read_word(&path, 7);
    // Granule 1 is the first block's payload (granule 0 is its header):
    // set its bit on top of the legitimate ones.
    let word0 = read_at(&path, bm_off);
    patch(&path, bm_off, &(word0 | 0b10).to_le_bytes());
    match map_err(attach(&path)) {
        MapError::CorruptBitmap { granule } => assert_eq!(granule, 1),
        e => panic!("expected CorruptBitmap, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn committed_block_with_cleared_bit_fails_typed() {
    let path = tmp("bitclear");
    mk_map(&path);
    // Clear the whole first bitmap word: every early committed block now has
    // header COMMITTED but bit 0 — the other irreconcilable direction.
    let bm_off = read_word(&path, 7);
    patch(&path, bm_off, &0u64.to_le_bytes());
    assert!(matches!(map_err(attach(&path)), MapError::CorruptBitmap { .. }));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn smashed_block_header_fails_typed() {
    let path = tmp("header");
    mk_map(&path);
    // First block header lives at data_off (superblock word 6).
    let data_off = read_word(&path, 6);
    patch(&path, data_off, &0xFFFF_FFFF_FFFF_FFFFu64.to_le_bytes());
    match map_err(attach(&path)) {
        MapError::CorruptHeader { granule } => assert_eq!(granule, 0),
        e => panic!("expected CorruptHeader, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Every structure kind refuses every other kind's heap with a typed
/// `WrongKind` carrying both kind tags — the full cross-kind matrix,
/// including the store.
#[test]
fn cross_kind_opens_fail_typed() {
    nvm::tid::set_tid(0);

    // One creator per kind.
    type Mk = fn(&PathBuf);
    let creators: &[(u64, Mk)] = &[
        (isb::hashmap::KIND_MAP, |p| {
            drop(RHashMap::<MappedNvm, 0>::attach_sized(p, SHARDS, HEAP_BYTES).unwrap())
        }),
        (isb::queue::KIND_QUEUE, |p| {
            drop(RQueue::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).unwrap())
        }),
        (isb::list::KIND_LIST, |p| {
            drop(RList::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).unwrap())
        }),
        (isb::bst::KIND_BST, |p| drop(RBst::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).unwrap())),
        (isb::stack::KIND_STACK, |p| {
            drop(RStack::<MappedNvm>::attach_sized(p, HEAP_BYTES).unwrap())
        }),
        (isb::store::KIND_STORE, |p| drop(Store::open_sized(p, HEAP_BYTES).unwrap())),
    ];
    // One opener per kind.
    type Open = fn(&PathBuf) -> Result<(), AttachError>;
    let openers: &[(u64, Open)] = &[
        (isb::hashmap::KIND_MAP, |p| {
            RHashMap::<MappedNvm, 0>::attach_sized(p, SHARDS, HEAP_BYTES).map(|_| ())
        }),
        (isb::queue::KIND_QUEUE, |p| {
            RQueue::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).map(|_| ())
        }),
        (isb::list::KIND_LIST, |p| RList::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).map(|_| ())),
        (isb::bst::KIND_BST, |p| RBst::<MappedNvm, 0>::attach_sized(p, HEAP_BYTES).map(|_| ())),
        (isb::stack::KIND_STACK, |p| RStack::<MappedNvm>::attach_sized(p, HEAP_BYTES).map(|_| ())),
        (isb::store::KIND_STORE, |p| Store::open_sized(p, HEAP_BYTES).map(|_| ())),
    ];

    for &(made, mk) in creators {
        let path = tmp(&format!("cross_{made}"));
        mk(&path);
        for &(want, open) in openers {
            if want == made {
                continue;
            }
            match open(&path) {
                Err(AttachError::WrongKind { expected, found, .. }) => {
                    assert_eq!(expected, want, "opener kind");
                    assert_eq!(found, made, "creator kind");
                }
                Err(e) => panic!("kind {made} opened as {want}: expected WrongKind, got {e}"),
                Ok(()) => panic!("kind {made} must not open as kind {want}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn heap_level_torn_tail_is_poisoned_through_structure_attach() {
    let path = tmp("torntail");
    mk_map(&path);
    {
        // Re-open at heap level and abandon an uncommitted allocation —
        // exactly the image a kill between `alloc` and `commit` leaves.
        let heap = MappedHeap::attach(&path).unwrap();
        let p = heap.alloc(192).unwrap();
        unsafe { std::ptr::write_bytes(p, 0xAB, 192) };
        // no commit
    }
    nvm::tid::set_tid(0);
    let (mut map, s) = RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, HEAP_BYTES)
        .expect("torn tail must heal, not fail");
    assert_eq!(s.heap.poisoned, 1, "exactly the abandoned block is poisoned");
    assert_eq!(map.snapshot_keys(), (1..=128).collect::<Vec<u64>>());
    map.check_invariants();
    drop(map);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Catalog corruption (multi-structure store)
// ---------------------------------------------------------------------------

/// Builds a two-structure store and returns the catalog block's file offset.
fn mk_store(path: &PathBuf) -> u64 {
    nvm::tid::set_tid(0);
    {
        let store = Store::open_sized(path, HEAP_BYTES).unwrap();
        let m = store.hashmap::<0>("users", SHARDS).unwrap();
        let q = store.queue::<0>("jobs").unwrap();
        for k in 1..=64u64 {
            assert!(m.insert(0, k));
        }
        for v in 1..=32u64 {
            q.enqueue(0, v);
        }
    }
    root_offset(path, 0x4341_5441) // rootkeys::CATALOG
}

fn store_err(path: &PathBuf) -> AttachError {
    match Store::open_sized(path, HEAP_BYTES) {
        Err(e) => e,
        Ok(_) => panic!("corrupt catalog must not attach"),
    }
}

#[test]
fn catalog_root_offset_out_of_bounds_fails_typed() {
    let path = tmp("cat_root");
    let cat = mk_store(&path);
    // Entry word 2 is the root offset; point slot 0's outside the file.
    let size = read_word(&path, 3);
    patch(&path, cat + 16, &(size + 4096).to_le_bytes());
    match store_err(&path) {
        AttachError::Map(MapError::CorruptCatalog { slot }) => assert_eq!(slot, 0),
        e => panic!("expected CorruptCatalog, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn catalog_oversized_name_fails_typed() {
    let path = tmp("cat_name");
    let cat = mk_store(&path);
    // Entry word 3 is the name length; 33 exceeds the inline name buffer.
    patch(&path, cat + 24, &33u64.to_le_bytes());
    assert!(matches!(store_err(&path), AttachError::Map(MapError::CorruptCatalog { slot: 0 })));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn catalog_unknown_kind_fails_typed() {
    let path = tmp("cat_kind");
    let cat = mk_store(&path);
    // Entry word 0 is the kind (valid flag); 0xEE is no known structure.
    patch(&path, cat, &0xEEu64.to_le_bytes());
    assert!(matches!(store_err(&path), AttachError::Map(MapError::CorruptCatalog { slot: 0 })));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn catalog_second_entry_corruption_reports_its_slot() {
    let path = tmp("cat_slot1");
    let cat = mk_store(&path);
    // Slot 1 ("jobs", 64 bytes after slot 0): zero name length.
    patch(&path, cat + 64 + 24, &0u64.to_le_bytes());
    assert!(matches!(store_err(&path), AttachError::Map(MapError::CorruptCatalog { slot: 1 })));
    let _ = std::fs::remove_file(&path);
}

/// A cleared kind word is indistinguishable from a torn entry creation:
/// the slot is simply invisible, the orphaned blocks are swept, and the
/// rest of the store attaches fine.
#[test]
fn catalog_cleared_kind_word_is_a_benign_empty_slot() {
    let path = tmp("cat_torn");
    let cat = mk_store(&path);
    patch(&path, cat + 64, &0u64.to_le_bytes()); // slot 1's kind := 0
    nvm::tid::set_tid(0);
    let store = Store::open_sized(&path, HEAP_BYTES).unwrap();
    let names: Vec<String> = store.entries().into_iter().map(|(n, _, _)| n).collect();
    assert_eq!(names, vec!["users".to_string()], "slot 1 invisible, slot 0 intact");
    assert!(store.summary().swept > 0, "the orphaned entry's blocks are reclaimed");
    let m = store.hashmap::<0>("users", SHARDS).unwrap();
    for k in 1..=64u64 {
        assert!(m.find(0, k), "surviving entry damaged by the sweep");
    }
    drop((m, store));
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Segment-directory corruption (multi-segment growth)
// ---------------------------------------------------------------------------

// Superblock geometry of the v3 format (see nvm::mapped module docs):
// word 10 = extra-segment count (the growth valid flag), words 48..80 = the
// per-segment byte lengths.
const W_SEG_COUNT: u64 = 10;
const W_SEG0: u64 = 48;

/// Builds a heap at `path` that grew past its minimal initial segment and
/// detaches cleanly. Returns the recorded total byte length.
fn mk_grown(path: &PathBuf) -> u64 {
    let heap = MappedHeap::create(path, nvm::mapped::MIN_HEAP_BYTES).unwrap();
    for i in 0..2048u64 {
        let p = heap.alloc(120).unwrap();
        unsafe { (p as *mut u64).write(i) };
        heap.commit(p);
    }
    assert!(heap.segments() > 1, "fill must outgrow the initial segment");
    drop(heap);
    let n = read_word(path, W_SEG_COUNT);
    let mut total = read_word(path, 3);
    for s in 0..n {
        total += read_word(path, W_SEG0 + s);
    }
    total
}

fn heap_err(path: &Path) -> MapError {
    match MappedHeap::attach(path) {
        Err(e) => e,
        Ok(_) => panic!("damaged segment directory must not attach"),
    }
}

#[test]
fn grown_heap_truncated_below_recorded_total_fails_typed() {
    let path = tmp("seg_trunc");
    let total = mk_grown(&path);
    // Cut the file below the directory's recorded total — the published
    // count promises bytes the file no longer has.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(total - 4096).unwrap();
    drop(f);
    match heap_err(&path) {
        MapError::Truncated { expected, found } => {
            assert_eq!(expected, total);
            assert_eq!(found, total - 4096);
        }
        e => panic!("expected Truncated, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_growth_stamped_entry_without_count_bump_is_benign() {
    let path = tmp("seg_torn");
    let total = mk_grown(&path);
    // The exact crash window of `grow`: the file was extended and the next
    // directory entry stamped, but the count (the valid flag) never moved.
    // The attach must ignore both the entry and the extra bytes.
    let n = read_word(&path, W_SEG_COUNT);
    patch(&path, (W_SEG0 + n) * 8, &(1u64 << 20).to_le_bytes());
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(total + (1 << 20)).unwrap();
    drop(f);
    let heap = MappedHeap::attach(&path).unwrap();
    assert_eq!(heap.segments() as u64, n + 1, "unpublished segment must stay invisible");
    assert_eq!(heap.report().poisoned, 0);
    assert_eq!(heap.report().committed, 2048);
    drop(heap);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn absurd_segment_entry_fails_typed() {
    let path = tmp("seg_absurd");
    mk_grown(&path);
    // Corrupt a *published* entry: not a page multiple.
    patch(&path, W_SEG0 * 8, &12345u64.to_le_bytes());
    assert!(matches!(heap_err(&path), MapError::BadSuperblock(_)));
    // And an implausibly huge one.
    patch(&path, W_SEG0 * 8, &(1u64 << 50).to_le_bytes());
    assert!(matches!(heap_err(&path), MapError::BadSuperblock(_)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn segment_count_beyond_file_len_fails_typed() {
    let path = tmp("seg_count");
    let total = mk_grown(&path);
    // Bump the count over a plausible entry the file has no bytes for — a
    // directory that lies about its published length.
    let n = read_word(&path, W_SEG_COUNT);
    patch(&path, (W_SEG0 + n) * 8, &(1u64 << 20).to_le_bytes());
    patch(&path, W_SEG_COUNT * 8, &(n + 1).to_le_bytes());
    match heap_err(&path) {
        MapError::Truncated { expected, found } => {
            assert_eq!(expected, total + (1 << 20));
            assert_eq!(found, total);
        }
        e => panic!("expected Truncated, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn segment_count_over_max_fails_typed() {
    let path = tmp("seg_max");
    mk_grown(&path);
    patch(&path, W_SEG_COUNT * 8, &((nvm::mapped::MAX_SEGMENTS as u64) + 1).to_le_bytes());
    assert!(matches!(heap_err(&path), MapError::BadSuperblock(_)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn structure_survives_growth_across_attach() {
    let path = tmp("seg_struct");
    nvm::tid::set_tid(0);
    // A map on a deliberately tiny initial heap: the fill forces several
    // growth steps, and a later attach must walk every segment.
    let keys = 20_000u64;
    {
        let (map, s) =
            RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, nvm::mapped::MIN_HEAP_BYTES)
                .unwrap();
        assert!(s.heap.created);
        for k in 1..=keys {
            assert!(map.insert(0, k));
        }
        assert!(map.heap().segments() > 1, "fill must outgrow the initial segment");
    }
    let (mut map, s) =
        RHashMap::<MappedNvm, 0>::attach_sized(&path, SHARDS, nvm::mapped::MIN_HEAP_BYTES).unwrap();
    assert!(!s.heap.created);
    assert!(s.heap.segments > 1);
    assert_eq!(s.heap.poisoned, 0);
    assert_eq!(map.snapshot_keys(), (1..=keys).collect::<Vec<u64>>());
    map.check_invariants();
    drop(map);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Response-table corruption (the KV service's exactly-once dedup state)
// ---------------------------------------------------------------------------

// Root block layout (see isb::resptable): 64-byte header (word 0 = magic
// "RTB1"), then nvm::MAX_PROCS intent slots [state, client_id, op_seq, op,
// arg], then 256 client slots [id, last_seq, resp] — 64 bytes each.
const RTAB_MAGIC: u64 = 0x5254_4231;

fn rtab_offset(path: &PathBuf) -> u64 {
    root_offset(path, 0x5245_5350) // rootkeys::RESPTAB
}

fn rtab_client_off(rtab: u64, idx: usize) -> u64 {
    rtab + 64 * (1 + nvm::MAX_PROCS as u64 + idx as u64)
}

fn rtab_intent_off(rtab: u64, pid: usize) -> u64 {
    rtab + 64 * (1 + pid as u64)
}

/// Builds a store whose response table carries one finalized client record
/// (id 42, watermark seq 5, response `RES_TRUE`); returns the table's file
/// offset and the client's slot index.
fn mk_kv_store(path: &PathBuf) -> (u64, usize) {
    nvm::tid::set_tid(0);
    let idx = {
        let store = Store::open_sized(path, HEAP_BYTES).unwrap();
        let m = store.hashmap::<0>("kv", SHARDS).unwrap();
        assert!(m.insert(0, 1));
        let tab = store.response_table();
        let idx = tab.register(42).expect("slot free");
        tab.finish_op(0, idx, 5, 2 /* RES_TRUE */);
        idx
    };
    (rtab_offset(path), idx)
}

#[test]
fn resptable_bad_magic_fails_typed() {
    let path = tmp("rtab_magic");
    let (rtab, _idx) = mk_kv_store(&path);
    assert_eq!(read_at(&path, rtab), RTAB_MAGIC, "layout drifted: header not where expected");
    patch(&path, rtab, &0xDEAD_BEEFu64.to_le_bytes());
    match store_err(&path) {
        AttachError::CorruptResponseTable { slot: 0, reason } => {
            assert!(reason.contains("magic"), "unexpected reason: {reason}");
        }
        e => panic!("expected CorruptResponseTable, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resptable_garbage_intent_state_fails_typed() {
    let path = tmp("rtab_state");
    let (rtab, _idx) = mk_kv_store(&path);
    // State words are 0 (empty) or 1 (in-flight); 7 is bit rot, not a
    // crash shape, and healing must refuse to guess.
    patch(&path, rtab_intent_off(rtab, 3), &7u64.to_le_bytes());
    match store_err(&path) {
        AttachError::CorruptResponseTable { slot, reason } => {
            assert_eq!(slot, 3, "error must name the damaged intent slot");
            assert!(reason.contains("state"), "unexpected reason: {reason}");
        }
        e => panic!("expected CorruptResponseTable, got {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// A client slot with `id == 0` but residue in `last_seq`/`resp` is a torn
/// registration (the ID stamp never persisted): healing zeroes it, and the
/// client re-registers fresh.
#[test]
fn resptable_torn_client_slot_heals_to_empty() {
    let path = tmp("rtab_torn");
    let (rtab, idx) = mk_kv_store(&path);
    // A torn registration in some OTHER slot than client 42's.
    let torn = (idx + 7) % 256;
    patch(&path, rtab_client_off(rtab, torn) + 8, &99u64.to_le_bytes());
    patch(&path, rtab_client_off(rtab, torn) + 16, &77u64.to_le_bytes());
    nvm::tid::set_tid(0);
    let store = Store::open_sized(&path, HEAP_BYTES).unwrap();
    let tab = store.response_table();
    assert_eq!(tab.lookup(42), Some((5, 2)), "intact slot survives healing");
    assert_eq!(read_at(&path, rtab_client_off(rtab, torn) + 8), 0, "residue zeroed");
    assert_eq!(read_at(&path, rtab_client_off(rtab, torn) + 16), 0, "residue zeroed");
    drop((tab, store));
    let _ = std::fs::remove_file(&path);
}

/// Two slots claiming the same client ID (a crash between a slot CAS and
/// its persist can leave the retried registration in a second slot): the
/// heal is deterministic — the higher ack watermark wins, the stale slot
/// becomes a tombstone (`u64::MAX`, not 0: a mid-chain 0 would truncate
/// the probe chain of every client that passed through the slot).
#[test]
fn resptable_duplicate_client_heals_to_higher_watermark() {
    let path = tmp("rtab_dup");
    let (rtab, idx) = mk_kv_store(&path);
    let dup = (idx + 11) % 256;
    patch(&path, rtab_client_off(rtab, dup), &42u64.to_le_bytes()); // same id
    patch(&path, rtab_client_off(rtab, dup) + 8, &2u64.to_le_bytes()); // stale seq
    patch(&path, rtab_client_off(rtab, dup) + 16, &1u64.to_le_bytes()); // RES_FALSE
    nvm::tid::set_tid(0);
    let store = Store::open_sized(&path, HEAP_BYTES).unwrap();
    let tab = store.response_table();
    assert_eq!(tab.lookup(42), Some((5, 2)), "higher watermark must win");
    assert_eq!(
        read_at(&path, rtab_client_off(rtab, dup)),
        u64::MAX,
        "stale duplicate tombstoned, not zeroed"
    );
    assert_eq!(read_at(&path, rtab_client_off(rtab, dup) + 8), 0, "residue zeroed");
    assert_eq!(read_at(&path, rtab_client_off(rtab, dup) + 16), 0, "residue zeroed");
    drop((tab, store));
    let _ = std::fs::remove_file(&path);
}

/// An in-flight intent naming a client that never (durably) registered:
/// the crash predates the client's first persisted registration, so there
/// is nothing to finalize — healing clears the intent and the client's
/// retry runs fresh.
#[test]
fn resptable_orphan_intent_heals_to_clear() {
    let path = tmp("rtab_orphan");
    let (rtab, _idx) = mk_kv_store(&path);
    let pid = 5usize;
    patch(&path, rtab_intent_off(rtab, pid) + 8, &777u64.to_le_bytes()); // unregistered id
    patch(&path, rtab_intent_off(rtab, pid) + 16, &1u64.to_le_bytes()); // op_seq
    patch(&path, rtab_intent_off(rtab, pid), &1u64.to_le_bytes()); // ST_INFLIGHT
    nvm::tid::set_tid(0);
    let store = Store::open_sized(&path, HEAP_BYTES).unwrap();
    let tab = store.response_table();
    assert!(tab.inflight(pid).is_none(), "orphan intent must be cleared by healing");
    assert_eq!(tab.lookup(777), None, "the phantom client does not exist");
    assert_eq!(tab.lookup(42), Some((5, 2)), "unrelated state untouched");
    drop((tab, store));
    let _ = std::fs::remove_file(&path);
}
