//! Attach-time corruption matrix for the mapped backend: every damaged-image
//! shape must fail with a **typed** `MapError` — never undefined behaviour —
//! and the benign torn states must heal. Complements the in-crate roundtrip
//! tests (`isb::hashmap`/`isb::queue`) and the cross-process SIGKILL harness
//! (`restart.rs`).

use isb::hashmap::RHashMap;
use nvm::mapped::MappedHeap;
use nvm::{MapError, MappedNvm};
use std::path::PathBuf;

const SHARDS: usize = 4;
const HEAP_BYTES: usize = 2 * 1024 * 1024;

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "isb_corrupt_{}_{}_{name}.heap",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Builds a populated map heap at `path` and detaches cleanly.
fn mk_map(path: &PathBuf) {
    nvm::tid::set_tid(0);
    let (map, s) = RHashMap::<MappedNvm, false>::attach_sized(path, SHARDS, HEAP_BYTES).unwrap();
    assert!(s.heap.created);
    for k in 1..=128u64 {
        assert!(map.insert(0, k));
    }
}

/// Overwrites `bytes` at `offset` in the heap file.
fn patch(path: &PathBuf, offset: u64, bytes: &[u8]) {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(bytes).unwrap();
}

fn read_at(path: &PathBuf, offset: u64) -> u64 {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 8];
    f.read_exact(&mut b).unwrap();
    u64::from_le_bytes(b)
}

fn read_word(path: &PathBuf, word: u64) -> u64 {
    read_at(path, word * 8)
}

fn attach(path: &PathBuf) -> Result<(), MapError> {
    RHashMap::<MappedNvm, false>::attach_sized(path, SHARDS, HEAP_BYTES).map(|_| ())
}

#[test]
fn truncated_file_fails_typed() {
    let path = tmp("trunc");
    mk_map(&path);
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(HEAP_BYTES as u64 / 2).unwrap();
    drop(f);
    match attach(&path) {
        Err(MapError::Truncated { expected, found }) => {
            assert_eq!(expected, HEAP_BYTES as u64);
            assert_eq!(found, HEAP_BYTES as u64 / 2);
        }
        Err(e) => panic!("expected Truncated, got {e}"),
        Ok(()) => panic!("truncated heap must not attach"),
    }
    // Sub-superblock truncation as well.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(100).unwrap();
    drop(f);
    assert!(matches!(attach(&path), Err(MapError::Truncated { .. })));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_magic_fails_typed() {
    let path = tmp("magic");
    mk_map(&path);
    patch(&path, 0, &0xBAD0_BAD0_BAD0_BAD0u64.to_le_bytes());
    match attach(&path) {
        Err(MapError::BadMagic(m)) => assert_eq!(m, 0xBAD0_BAD0_BAD0_BAD0),
        Err(e) => panic!("expected BadMagic, got {e}"),
        Ok(()) => panic!("bad magic must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_fails_typed() {
    let path = tmp("version");
    mk_map(&path);
    patch(&path, 8, &99u64.to_le_bytes()); // word 1: version
    match attach(&path) {
        Err(MapError::BadVersion(v)) => assert_eq!(v, 99),
        Err(e) => panic!("expected BadVersion, got {e}"),
        Ok(()) => panic!("future version must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_base_fails_typed() {
    let path = tmp("base");
    mk_map(&path);
    // Word 2: the recorded base. An unaligned/garbage base is rejected
    // before anything is mapped.
    patch(&path, 16, &0x0123_4567_u64.to_le_bytes());
    assert!(matches!(attach(&path), Err(MapError::BadSuperblock(_))));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn superblock_from_a_different_base_fails_typed_not_ub() {
    let path = tmp("rebase");
    mk_map(&path);
    // Rewrite the recorded base to a *valid-looking but wrong* page-aligned
    // address: the mapping then lands somewhere the structure's absolute
    // pointers do not reference. The pre-recovery validation walk must turn
    // this into a typed error instead of chasing wild pointers.
    let old = read_word(&path, 2);
    let wrong = old ^ 0x2000_0000_0000; // flip a high bit: stays aligned & canonical
    patch(&path, 16, &wrong.to_le_bytes());
    match attach(&path) {
        Err(MapError::CorruptPointer { addr }) => {
            // The first out-of-window pointer is reported verbatim.
            assert_ne!(addr, 0);
        }
        // If the kernel could not map at `wrong` either, the relocation
        // pass rebases *relative to the recorded base*, which scrambles the
        // pointers the same way — still a typed CorruptPointer.
        Err(e) => panic!("expected CorruptPointer, got {e}"),
        Ok(()) => panic!("foreign-base superblock must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pointer_at_mapping_end_fails_typed_not_oob() {
    let path = tmp("oob");
    mk_map(&path);
    // Point the first bucket head at the very last 8-aligned address of the
    // mapping: it is aligned and *starts* inside the arena, but reading a
    // whole node there would run past the mapping end. The span-aware
    // validation must reject it before any dereference.
    let base = read_word(&path, 2);
    let size = read_word(&path, 3);
    let heads_off = {
        // Scan the root directory (words 16..) for the HEADS key.
        let mut off = None;
        for s in 0..16u64 {
            if read_word(&path, 16 + 2 * s) == 0x4845_4144 {
                off = Some(read_word(&path, 16 + 2 * s + 1));
            }
        }
        off.expect("heads root registered")
    };
    patch(&path, heads_off, &(base + size - 8).to_le_bytes());
    match attach(&path) {
        Err(MapError::CorruptPointer { addr }) => assert_eq!(addr, base + size - 8),
        Err(e) => panic!("expected CorruptPointer, got {e}"),
        Ok(()) => panic!("end-of-mapping pointer must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bitmap_overlapping_data_region_fails_typed() {
    let path = tmp("bmfit");
    mk_map(&path);
    // Shrink the recorded data offset to the superblock page: the commit
    // bitmap would then overlap the data region, and bm_set/bm_clear would
    // silently scribble over block payloads. Must be a typed error.
    patch(&path, 6 * 8, &4096u64.to_le_bytes());
    assert!(matches!(attach(&path), Err(MapError::BadSuperblock(_))));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_bitmap_fails_typed() {
    let path = tmp("bitmap");
    mk_map(&path);
    // The commit bitmap starts at word 7's offset (PAGE = 4096). Set a bit
    // in the middle of a committed block's payload: a set bit with no
    // committed header under it cannot arise from any crash ordering.
    let bm_off = read_word(&path, 7);
    // Granule 1 is the first block's payload (granule 0 is its header):
    // set its bit on top of the legitimate ones.
    let word0 = read_at(&path, bm_off);
    patch(&path, bm_off, &(word0 | 0b10).to_le_bytes());
    match attach(&path) {
        Err(MapError::CorruptBitmap { granule }) => assert_eq!(granule, 1),
        Err(e) => panic!("expected CorruptBitmap, got {e}"),
        Ok(()) => panic!("torn bitmap must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn committed_block_with_cleared_bit_fails_typed() {
    let path = tmp("bitclear");
    mk_map(&path);
    // Clear the whole first bitmap word: every early committed block now has
    // header COMMITTED but bit 0 — the other irreconcilable direction.
    let bm_off = read_word(&path, 7);
    patch(&path, bm_off, &0u64.to_le_bytes());
    assert!(matches!(attach(&path), Err(MapError::CorruptBitmap { .. })));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn smashed_block_header_fails_typed() {
    let path = tmp("header");
    mk_map(&path);
    // First block header lives at data_off (superblock word 6).
    let data_off = read_word(&path, 6);
    patch(&path, data_off, &0xFFFF_FFFF_FFFF_FFFFu64.to_le_bytes());
    match attach(&path) {
        Err(MapError::CorruptHeader { granule }) => assert_eq!(granule, 0),
        Err(e) => panic!("expected CorruptHeader, got {e}"),
        Ok(()) => panic!("smashed header must not attach"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_structure_kind_fails_typed() {
    let path = tmp("kind");
    nvm::tid::set_tid(0);
    // Create a QUEUE heap, then try to attach it as a map.
    drop(isb::queue::RQueue::<MappedNvm, false>::attach_sized(&path, HEAP_BYTES).unwrap());
    match attach(&path) {
        Err(MapError::WrongKind { expected, found }) => {
            assert_eq!(expected, isb::hashmap::KIND_MAP);
            assert_eq!(found, isb::queue::KIND_QUEUE);
        }
        Err(e) => panic!("expected WrongKind, got {e}"),
        Ok(()) => panic!("queue heap must not attach as a map"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn heap_level_torn_tail_is_poisoned_through_structure_attach() {
    let path = tmp("torntail");
    mk_map(&path);
    {
        // Re-open at heap level and abandon an uncommitted allocation —
        // exactly the image a kill between `alloc` and `commit` leaves.
        let heap = MappedHeap::attach(&path).unwrap();
        let p = heap.alloc(192).unwrap();
        unsafe { std::ptr::write_bytes(p, 0xAB, 192) };
        // no commit
    }
    nvm::tid::set_tid(0);
    let (mut map, s) = RHashMap::<MappedNvm, false>::attach_sized(&path, SHARDS, HEAP_BYTES)
        .expect("torn tail must heal, not fail");
    assert_eq!(s.heap.poisoned, 1, "exactly the abandoned block is poisoned");
    assert_eq!(map.snapshot_keys(), (1..=128).collect::<Vec<u64>>());
    map.check_invariants();
    drop(map);
    let _ = std::fs::remove_file(&path);
}
