//! Reuse-ABA stress: hammer insert/delete on ONE key with tiny pool
//! capacities so descriptors and nodes recycle as fast as the epoch
//! machinery allows, and assert that no completed operation's tag ever
//! resurrects (a recycled descriptor address confused with a live one would
//! leave a reachable tagged node, double-apply an effect, or corrupt the
//! responses).
//!
//! This is the adversarial counterpart of DESIGN.md §9's argument that
//! epoch-delayed recycling preserves the §5 info-pointer ABA protection: if
//! the pool ever handed an address back while a stale helper could still
//! CAS it, these loops make that collision as likely as possible.

use isb::hashmap::RHashMap;
use isb::list::RList;
use isb::pool::PoolCfg;
use nvm::CountingNvm;
use reclaim::Collector;
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};
use std::sync::Arc;

type M = CountingNvm;

/// Single-thread determinism: with a capacity-2 pool every retired
/// descriptor re-enters circulation almost immediately; 20k rounds on one
/// key force constant reuse of both infos and nodes. Every response is
/// deterministic — any ABA confusion shows up as a wrong response or a
/// tagged node at quiescence.
#[test]
fn single_thread_one_key_churn_reuses_without_aba() {
    let _gate = isb::counters::gate_shared();
    nvm::tid::set_tid(0);
    let reuse0 = (isb::counters::info_reuses(), isb::counters::node_reuses());
    let mut list = RList::<M, 0>::with_config(Collector::new(), PoolCfg::tiny(2));
    for round in 0..20_000u64 {
        assert!(list.insert(0, 7), "round {round}: insert must win on an empty set");
        assert!(list.find(0, 7), "round {round}: inserted key must be found");
        assert!(list.delete(0, 7), "round {round}: delete must win");
        assert!(!list.find(0, 7), "round {round}: deleted key must be gone");
    }
    assert!(
        isb::counters::info_reuses() > reuse0.0,
        "pool never recycled an Info — the stress is vacuous"
    );
    assert!(
        isb::counters::node_reuses() > reuse0.1,
        "pool never recycled a node — the stress is vacuous"
    );
    list.check_invariants(); // asserts: no reachable node is tagged
    assert_eq!(list.snapshot_keys(), Vec::<u64>::new());
}

/// Concurrent contention on ONE key with a tiny pool, both tunings. Checks:
///
/// * conservation — `#insert-wins − #delete-wins ∈ {0, 1}` and equals the
///   final membership (an ABA double-apply breaks this);
/// * quiescent tag-freeness — `check_invariants` panics on any reachable
///   tagged node (a resurrection of a completed op's tag);
/// * leak/double-free freedom under maximal recycling pressure.
#[test]
fn concurrent_one_key_contention_with_tiny_pool() {
    let _gate = isb::counters::gate_exclusive();
    nvm::tid::set_tid(0);
    let nodes0 = isb::counters::live_nodes();
    let infos0 = isb::counters::live_infos();

    fn run<const ARM: u8>(label: &str) {
        let list = Arc::new(RList::<M, ARM>::with_config(Collector::new(), PoolCfg::tiny(4)));
        let balance = Arc::new(AtomicI64::new(0)); // insert wins − delete wins
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let list = Arc::clone(&list);
                let balance = Arc::clone(&balance);
                std::thread::spawn(move || {
                    nvm::tid::set_tid(t);
                    for i in 0..4000u64 {
                        // Skewed per-thread mix keeps both ops contending.
                        if (i + t as u64).is_multiple_of(2) {
                            if list.insert(t, 42) {
                                balance.fetch_add(1, Relaxed);
                            }
                        } else if list.delete(t, 42) {
                            balance.fetch_sub(1, Relaxed);
                        }
                        if i % 7 == 0 {
                            list.find(t, 42);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut list = Arc::into_inner(list).unwrap();
        let present = list.find(0, 42);
        let balance = balance.load(Relaxed);
        assert_eq!(
            balance, present as i64,
            "{label}: wins don't balance — an effect was lost or applied twice"
        );
        list.check_invariants(); // no resurrection of completed-op tags
    }

    run::<0>("Isb");
    run::<1>("Isb-Opt");

    assert_eq!(isb::counters::live_nodes(), nodes0, "node leak/double-free under reuse");
    assert_eq!(isb::counters::live_infos(), infos0, "info leak/double-free under reuse");
}

/// Same contention shape through the sharded map (all threads collide in
/// one bucket, shared pools): exercises descriptor reuse across the shared
/// recovery area plus the map's teardown under recycling pressure.
#[test]
fn hashmap_one_key_contention_with_tiny_pool() {
    let _gate = isb::counters::gate_shared();
    nvm::tid::set_tid(0);
    let map =
        Arc::new(RHashMap::<M, 1>::with_shards_and_config(8, Collector::new(), PoolCfg::tiny(4)));
    let balance = Arc::new(AtomicI64::new(0));
    let hs: Vec<_> = (0..4)
        .map(|t| {
            let map = Arc::clone(&map);
            let balance = Arc::clone(&balance);
            std::thread::spawn(move || {
                nvm::tid::set_tid(t);
                for i in 0..3000u64 {
                    if (i + t as u64).is_multiple_of(2) {
                        if map.insert(t, 42) {
                            balance.fetch_add(1, Relaxed);
                        }
                    } else if map.delete(t, 42) {
                        balance.fetch_sub(1, Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let mut map = Arc::into_inner(map).unwrap();
    assert_eq!(balance.load(Relaxed), map.find(0, 42) as i64, "map wins don't balance");
    map.check_invariants();
}
